//! Fault-resilience sweep: delivered fraction, goodput overhead, and
//! time-to-recover vs failed links/routers, per routing algorithm.
//!
//! Random sets of cables and whole routers (chosen
//! connectivity-preserving via `FaultSet::random_links` +
//! `extend_random_routers`) are killed mid-run at `--kill` and revived at
//! `--revive` (0 = never); uniform random traffic flows for a fixed
//! window and the network drains. Adaptive algorithms (DimWAR, OmniWAR,
//! FT-WAR) should hold delivered fraction near 1.0 while DOR — whose
//! single minimal candidate may be dead — wedges on affected flows. With
//! the source-retransmission transport on (`--retransmit` timeout axis),
//! every algorithm should reach 100% *logical* delivery, paying for it in
//! retransmitted-flit overhead and recovery latency, which the summary
//! tables report.
//!
//! This binary is a thin wrapper over the `hx` experiment orchestrator
//! (`hxharness`): it assembles the same declarative sweep spec that
//! `experiments/fault_resilience.toml` describes and hands it to the
//! shared scheduler, so completed points are answered from the
//! content-addressed store under `results/store/` and an interrupted
//! sweep resumes where it left off. Pass `--no-cache` to bypass the store.
//!
//! ```text
//! cargo run --release -p hxbench --bin fault_resilience -- \
//!     [--algos DOR,DimWAR,OmniWAR,FT-WAR] [--fails 0,1,2,4,8] \
//!     [--router-fails 0,1] [--retransmit 0,400] [--kill 1000] \
//!     [--revive 5000] [--reps 3] [--load 0.2] [--cycles 10000] [--full] \
//!     [--seed 1] [--json out.jsonl] [--threads N] [--no-cache]
//!     [--submit HOST:PORT]
//! ```
//!
//! `--submit HOST:PORT` ships the assembled spec to a running `hx serve`
//! daemon instead of sweeping locally; rows stream back byte-identical
//! (incompatible with `--metrics`, which needs local execution).
//!
//! `--threads N` shards every simulation's per-cycle compute across N
//! worker threads (bit-identical results for any N; also settable via
//! `HX_TICK_THREADS`). Fault application itself stays serial at cycle
//! boundaries, so fault schedules are thread-count-invariant too.
//! Default network is a 3x3x2 (54-terminal) HyperX; `--full` runs the
//! reduced evaluation network (3x4x4, 256 terminals).

use std::path::Path;

use hxbench::{
    render_metrics_table, render_table, sweep_or_submit, write_jsonl, Args, CommonArgs,
    MetricsArgs, MetricsRow,
};
use hxharness::{parse_json, ExperimentSpec, Kind, NetworkSpec, Store, SweepOpts};
use hxsim::{SimConfig, SteadyOpts};

const DEFAULT_ALGOS: &[&str] = &["DOR", "DimWAR", "OmniWAR", "FT-WAR"];

/// The fields of a harness result row that the tables render.
struct Row {
    algo: String,
    fails: usize,
    router_fails: usize,
    retransmit: u64,
    delivered_fraction: f64,
    wedged: bool,
    retransmits: u64,
    duplicates_dropped: u64,
    goodput_overhead: f64,
    time_to_recover: u64,
    recovery_p99: f64,
}

fn parse_row(line: &str) -> Row {
    let v = parse_json(line).expect("harness rows are valid JSON");
    let int = |k: &str| {
        v.get(k)
            .and_then(|x| x.as_i64())
            .unwrap_or_else(|| panic!("{k}")) as u64
    };
    let num = |k: &str| {
        v.get(k)
            .and_then(|x| x.as_f64())
            .unwrap_or_else(|| panic!("{k}"))
    };
    Row {
        algo: v
            .get("algo")
            .and_then(|x| x.as_str())
            .expect("algo")
            .to_string(),
        fails: int("fails") as usize,
        router_fails: int("router_fails") as usize,
        retransmit: int("retransmit"),
        delivered_fraction: num("delivered_fraction"),
        wedged: v.get("wedged").and_then(|x| x.as_bool()).expect("wedged"),
        retransmits: int("retransmits"),
        duplicates_dropped: int("duplicates_dropped"),
        goodput_overhead: num("goodput_overhead"),
        time_to_recover: int("time_to_recover"),
        recovery_p99: num("recovery_p99"),
    }
}

fn main() {
    let args = Args::parse();
    let common = CommonArgs::parse(&args);
    let reps: u64 = args.get_or("reps", 3);
    let load: f64 = args.get_or("load", 0.2);
    let cycles: u64 = args.get_or("cycles", 10_000);
    let algos: Vec<String> = args
        .get("algos")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| DEFAULT_ALGOS.iter().map(|s| s.to_string()).collect());
    let fails: Vec<usize> = args
        .get("fails")
        .map(|s| {
            s.split(',')
                .map(|v| v.parse().expect("bad --fails"))
                .collect()
        })
        .unwrap_or_else(|| vec![0, 1, 2, 4, 8]);
    let router_fails: Vec<usize> = args
        .get("router-fails")
        .map(|s| {
            s.split(',')
                .map(|v| v.parse().expect("bad --router-fails"))
                .collect()
        })
        .unwrap_or_else(|| vec![0, 1]);
    let retransmit: Vec<u64> = args
        .get("retransmit")
        .map(|s| {
            s.split(',')
                .map(|v| v.parse().expect("bad --retransmit"))
                .collect()
        })
        .unwrap_or_else(|| vec![0, 400]);
    let kill: u64 = args.get_or("kill", 1_000);
    let revive: u64 = args.get_or("revive", 5_000);

    let (width, terminals) = if common.full { (4, 4) } else { (3, 2) };
    let spec = ExperimentSpec {
        name: "fault_resilience".to_string(),
        kind: Kind::Fault,
        description: "Delivered fraction and latency vs failed links".to_string(),
        network: NetworkSpec {
            dims: 3,
            width,
            terminals,
        },
        axes: hxharness::spec::Axes {
            patterns: vec!["UR".to_string()],
            algos: algos.clone(),
            loads: vec![load],
            seeds: (0..reps.max(1)).map(|i| common.seed + i).collect(),
            fails: fails.clone(),
            router_fails: router_fails.clone(),
            retransmit: retransmit.clone(),
        },
        sim: SimConfig {
            // Wedged flows must fail fast so the sweep terminates.
            watchdog_stall_cycles: 2_000,
            tick_threads: 1,
            ..SimConfig::default()
        },
        steady: SteadyOpts::default(),
        fault: hxharness::FaultProtocol {
            cycles,
            drain_factor: 4,
            kill_cycle: kill,
            revive_cycle: revive,
            ..Default::default()
        },
        overrides: Vec::new(),
    };
    if let Err(e) = spec.validate() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }

    let metrics_args = MetricsArgs::parse(&args);
    let submit = args.get("submit");
    // With --submit the daemon owns the (possibly remote) store; opening
    // a local one would be misleading.
    let store = if args.flag("no-cache") || submit.is_some() {
        None
    } else {
        match Store::open(Path::new(hxharness::DEFAULT_STORE_DIR)) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: cannot open result store ({e}); running uncached");
                None
            }
        }
    };
    let opts = SweepOpts {
        tick_threads: args.get_or("threads", 0),
        metrics: metrics_args.config(),
        progress: true,
        ..SweepOpts::default()
    };
    let report = match sweep_or_submit(
        &spec,
        store.as_ref(),
        common.json.as_deref().map(Path::new),
        &opts,
        submit,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Row> = report.rows.iter().map(|l| parse_row(l)).collect();

    // Delivered fraction (averaged over reps) per algo x fault mix, one
    // table per retransmission setting. With the transport on the
    // fraction is *logical* (a copy lost to a fault and recovered by
    // retransmission is not charged against the algorithm).
    for &rt in &retransmit {
        let mut header = vec!["links+routers".to_string()];
        header.extend(algos.iter().cloned());
        let mut table = Vec::new();
        for &n in &fails {
            for &rn in &router_fails {
                let mut line = vec![format!("{n}+{rn}r")];
                for a in &algos {
                    let sel: Vec<&Row> = rows
                        .iter()
                        .filter(|r| {
                            &r.algo == a
                                && r.fails == n
                                && r.router_fails == rn
                                && r.retransmit == rt
                        })
                        .collect();
                    assert!(!sel.is_empty(), "missing rows for {a} at {n}+{rn}r rt={rt}");
                    let frac =
                        sel.iter().map(|r| r.delivered_fraction).sum::<f64>() / sel.len() as f64;
                    let wedged = sel.iter().filter(|r| r.wedged).count();
                    line.push(if wedged > 0 {
                        format!("{frac:.3} ({wedged}/{} wedged)", sel.len())
                    } else {
                        format!("{frac:.3}")
                    });
                }
                table.push(line);
            }
        }
        let label = if rt == 0 {
            "retransmission off".to_string()
        } else {
            format!("retransmit timeout {rt}")
        };
        println!(
            "\nFault resilience: delivered fraction vs failed links+routers (UR load {load:.2}, {label})"
        );
        println!("{}", render_table(&header, &table));
    }

    // Recovery cost summary per algorithm, over every retransmitting
    // point that saw at least one fault.
    if retransmit.iter().any(|&rt| rt > 0) {
        let header = vec![
            "algo".to_string(),
            "retransmits".to_string(),
            "dups dropped".to_string(),
            "goodput ovh".to_string(),
            "recover p99".to_string(),
            "max t-to-recover".to_string(),
        ];
        let table: Vec<Vec<String>> = algos
            .iter()
            .map(|a| {
                let sel: Vec<&Row> = rows
                    .iter()
                    .filter(|r| {
                        &r.algo == a && r.retransmit > 0 && (r.fails > 0 || r.router_fails > 0)
                    })
                    .collect();
                let n = sel.len().max(1) as f64;
                vec![
                    a.clone(),
                    sel.iter().map(|r| r.retransmits).sum::<u64>().to_string(),
                    sel.iter()
                        .map(|r| r.duplicates_dropped)
                        .sum::<u64>()
                        .to_string(),
                    format!(
                        "{:.4}",
                        sel.iter().map(|r| r.goodput_overhead).sum::<f64>() / n
                    ),
                    format!(
                        "{:.0}",
                        sel.iter().map(|r| r.recovery_p99).fold(0.0, f64::max)
                    ),
                    sel.iter()
                        .map(|r| r.time_to_recover)
                        .max()
                        .unwrap_or(0)
                        .to_string(),
                ]
            })
            .collect();
        println!(
            "\nRecovery cost (retransmitting points with faults, kill@{kill} revive@{revive})"
        );
        println!("{}", render_table(&header, &table));
    }

    if metrics_args.enabled() {
        let points = spec.expand();
        let metric_rows: Vec<MetricsRow> = report
            .metrics
            .iter()
            .map(|(i, summary)| MetricsRow {
                label: format!("{} failed links", points[*i].fails),
                algo: points[*i].algo.clone(),
                offered: points[*i].load,
                summary: summary.clone(),
            })
            .collect();
        println!("\nObservability summary (per algorithm, aggregated over all runs)");
        println!("{}", render_metrics_table(&metric_rows));
        write_jsonl(metrics_args.path.as_deref(), &metric_rows);
    }
}
