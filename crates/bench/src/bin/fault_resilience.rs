//! Fault-resilience sweep: delivered fraction and latency vs number of
//! failed links, per routing algorithm.
//!
//! Random sets of cables (chosen connectivity-preserving via
//! `FaultSet::random_links`) are killed at cycle 0 of each run; uniform
//! random traffic then flows for a fixed window and the network drains.
//! Adaptive algorithms (DimWAR, OmniWAR) should hold delivered fraction at
//! 1.0 while DOR — whose single minimal candidate may be dead — wedges on
//! affected flows and loses them to the watchdog cutoff.
//!
//! This binary is a thin wrapper over the `hx` experiment orchestrator
//! (`hxharness`): it assembles the same declarative sweep spec that
//! `experiments/fault_resilience.toml` describes and hands it to the
//! shared scheduler, so completed points are answered from the
//! content-addressed store under `results/store/` and an interrupted
//! sweep resumes where it left off. Pass `--no-cache` to bypass the store.
//!
//! ```text
//! cargo run --release -p hxbench --bin fault_resilience -- \
//!     [--algos DOR,DimWAR,OmniWAR] [--fails 0,1,2,4,8] [--reps 3] \
//!     [--load 0.2] [--cycles 10000] [--full] [--seed 1] [--json out.jsonl] \
//!     [--threads N] [--no-cache]
//! ```
//!
//! `--threads N` shards every simulation's per-cycle compute across N
//! worker threads (bit-identical results for any N; also settable via
//! `HX_TICK_THREADS`). Fault application itself stays serial at cycle
//! boundaries, so fault schedules are thread-count-invariant too.
//! Default network is a 3x3x2 (54-terminal) HyperX; `--full` runs the
//! reduced evaluation network (3x4x4, 256 terminals).

use std::path::Path;

use hxbench::{
    render_metrics_table, render_table, write_jsonl, Args, CommonArgs, MetricsArgs, MetricsRow,
};
use hxharness::{parse_json, run_sweep, ExperimentSpec, Kind, NetworkSpec, Store, SweepOpts};
use hxsim::{SimConfig, SteadyOpts};

const DEFAULT_ALGOS: &[&str] = &["DOR", "DimWAR", "OmniWAR"];

/// The fields of a harness result row that the table renders.
struct Row {
    algo: String,
    fails: usize,
    delivered_fraction: f64,
    wedged: bool,
}

fn parse_row(line: &str) -> Row {
    let v = parse_json(line).expect("harness rows are valid JSON");
    Row {
        algo: v
            .get("algo")
            .and_then(|x| x.as_str())
            .expect("algo")
            .to_string(),
        fails: v.get("fails").and_then(|x| x.as_i64()).expect("fails") as usize,
        delivered_fraction: v
            .get("delivered_fraction")
            .and_then(|x| x.as_f64())
            .expect("delivered_fraction"),
        wedged: v.get("wedged").and_then(|x| x.as_bool()).expect("wedged"),
    }
}

fn main() {
    let args = Args::parse();
    let common = CommonArgs::parse(&args);
    let reps: u64 = args.get_or("reps", 3);
    let load: f64 = args.get_or("load", 0.2);
    let cycles: u64 = args.get_or("cycles", 10_000);
    let algos: Vec<String> = args
        .get("algos")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| DEFAULT_ALGOS.iter().map(|s| s.to_string()).collect());
    let fails: Vec<usize> = args
        .get("fails")
        .map(|s| {
            s.split(',')
                .map(|v| v.parse().expect("bad --fails"))
                .collect()
        })
        .unwrap_or_else(|| vec![0, 1, 2, 4, 8]);

    let (width, terminals) = if common.full { (4, 4) } else { (3, 2) };
    let spec = ExperimentSpec {
        name: "fault_resilience".to_string(),
        kind: Kind::Fault,
        description: "Delivered fraction and latency vs failed links".to_string(),
        network: NetworkSpec {
            dims: 3,
            width,
            terminals,
        },
        axes: hxharness::spec::Axes {
            patterns: vec!["UR".to_string()],
            algos: algos.clone(),
            loads: vec![load],
            seeds: (0..reps.max(1)).map(|i| common.seed + i).collect(),
            fails: fails.clone(),
        },
        sim: SimConfig {
            // Wedged flows must fail fast so the sweep terminates.
            watchdog_stall_cycles: 2_000,
            tick_threads: 1,
            ..SimConfig::default()
        },
        steady: SteadyOpts::default(),
        fault: hxharness::FaultProtocol {
            cycles,
            drain_factor: 4,
        },
        overrides: Vec::new(),
    };
    if let Err(e) = spec.validate() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }

    let metrics_args = MetricsArgs::parse(&args);
    let store = if args.flag("no-cache") {
        None
    } else {
        match Store::open(Path::new(hxharness::DEFAULT_STORE_DIR)) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: cannot open result store ({e}); running uncached");
                None
            }
        }
    };
    let opts = SweepOpts {
        tick_threads: args.get_or("threads", 0),
        metrics: metrics_args.config(),
        progress: true,
        ..SweepOpts::default()
    };
    let report = match run_sweep(
        &spec,
        store.as_ref(),
        common.json.as_deref().map(Path::new),
        &opts,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Row> = report.rows.iter().map(|l| parse_row(l)).collect();

    // Summary: delivered fraction (averaged over reps) per algo x fails.
    let mut header = vec!["failed links".to_string()];
    header.extend(algos.iter().cloned());
    let table: Vec<Vec<String>> = fails
        .iter()
        .map(|&n| {
            let mut line = vec![n.to_string()];
            for a in &algos {
                let sel: Vec<&Row> = rows
                    .iter()
                    .filter(|r| &r.algo == a && r.fails == n)
                    .collect();
                assert!(!sel.is_empty(), "missing rows for {a} at {n} fails");
                let frac = sel.iter().map(|r| r.delivered_fraction).sum::<f64>() / sel.len() as f64;
                let wedged = sel.iter().filter(|r| r.wedged).count();
                line.push(if wedged > 0 {
                    format!("{frac:.3} ({wedged}/{} wedged)", sel.len())
                } else {
                    format!("{frac:.3}")
                });
            }
            line
        })
        .collect();
    println!("\nFault resilience: delivered fraction vs failed links (UR load {load:.2})");
    println!("{}", render_table(&header, &table));

    if metrics_args.enabled() {
        let points = spec.expand();
        let metric_rows: Vec<MetricsRow> = report
            .metrics
            .iter()
            .map(|(i, summary)| MetricsRow {
                label: format!("{} failed links", points[*i].fails),
                algo: points[*i].algo.clone(),
                offered: points[*i].load,
                summary: summary.clone(),
            })
            .collect();
        println!("\nObservability summary (per algorithm, aggregated over all runs)");
        println!("{}", render_metrics_table(&metric_rows));
        write_jsonl(metrics_args.path.as_deref(), &metric_rows);
    }
}
