//! Fault-resilience sweep: delivered fraction and latency vs number of
//! failed links, per routing algorithm.
//!
//! Random sets of cables (chosen connectivity-preserving via
//! `FaultSet::random_links`) are killed at cycle 0 of each run; uniform
//! random traffic then flows for a fixed window and the network drains.
//! Adaptive algorithms (DimWAR, OmniWAR) should hold delivered fraction at
//! 1.0 while DOR — whose single minimal candidate may be dead — wedges on
//! affected flows and loses them to the watchdog cutoff.
//!
//! ```text
//! cargo run --release -p hxbench --bin fault_resilience -- \
//!     [--algos DOR,DimWAR,OmniWAR] [--fails 0,1,2,4,8] [--reps 3] \
//!     [--load 0.2] [--cycles 10000] [--seed 1] [--json out.jsonl] \
//!     [--threads N]
//! ```
//!
//! `--threads N` shards every simulation's per-cycle compute across N
//! worker threads (bit-identical results for any N; also settable via
//! `HX_TICK_THREADS`). Fault application itself stays serial at cycle
//! boundaries, so fault schedules are thread-count-invariant too.

use std::sync::Arc;

use hxbench::{
    parallel_map, render_metrics_table, render_table, write_jsonl, Args, MetricsArgs, MetricsRow,
};
use hxcore::hyperx_algorithm;
use hxsim::{FaultSchedule, IdleWorkload, Sim, SimConfig};
use hxtopo::{FaultSet, HyperX, Topology};
use hxtraffic::{pattern_by_name, SyntheticWorkload};
use serde::Serialize;

const DEFAULT_ALGOS: &[&str] = &["DOR", "DimWAR", "OmniWAR"];

#[derive(Serialize, Clone)]
struct Row {
    algo: String,
    failed_links: usize,
    seed: u64,
    attempted_packets: u64,
    delivered_packets: u64,
    dropped_packets: u64,
    stranded_packets: u64,
    delivered_fraction: f64,
    mean_latency: f64,
    p99_latency: f64,
    mean_hops: f64,
    wedged: bool,
}

fn main() {
    let args = Args::parse();
    let seed0: u64 = args.get_or("seed", 1);
    let reps: u64 = args.get_or("reps", 3);
    let load: f64 = args.get_or("load", 0.2);
    let cycles: u64 = args.get_or("cycles", 10_000);
    let algos: Vec<String> = args
        .get("algos")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| DEFAULT_ALGOS.iter().map(|s| s.to_string()).collect());
    let fails: Vec<usize> = args
        .get("fails")
        .map(|s| {
            s.split(',')
                .map(|v| v.parse().expect("bad --fails"))
                .collect()
        })
        .unwrap_or_else(|| vec![0, 1, 2, 4, 8]);

    let hx = Arc::new(HyperX::uniform(3, 3, 2));
    let mut cfg = SimConfig {
        // Wedged flows must fail fast so the sweep terminates.
        watchdog_stall_cycles: 2_000,
        ..SimConfig::default()
    };
    cfg.tick_threads = args.get_or("threads", cfg.tick_threads);
    let metrics_args = MetricsArgs::parse(&args);
    let metrics_cfg = metrics_args.config();

    let mut work = Vec::new();
    for a in &algos {
        for &n in &fails {
            for rep in 0..reps {
                work.push((a.clone(), n, seed0 + rep));
            }
        }
    }
    eprintln!(
        "fault_resilience: {} runs on {} ({} terminals)",
        work.len(),
        hx.name(),
        hx.num_terminals()
    );

    let results: Vec<(Row, Option<MetricsRow>)> =
        parallel_map(work, |(algo_name, n_fail, seed)| {
            let algo: Arc<dyn hxcore::RoutingAlgorithm> =
                hyperx_algorithm(&algo_name, hx.clone(), cfg.num_vcs)
                    .unwrap_or_else(|| panic!("unknown algorithm {algo_name}"))
                    .into();
            let mut sim = Sim::new(hx.clone(), algo, cfg, seed);
            if let Some(mc) = metrics_cfg {
                sim.enable_metrics(mc);
            }
            // The same seed picks the same dead cables for every algorithm, so
            // the comparison is apples-to-apples per (n_fail, seed).
            let faults = FaultSet::random_links(&*hx, n_fail, seed);
            let mut schedule = FaultSchedule::new();
            for (r, p) in faults.links() {
                schedule = schedule.kill_link_at(0, r, p);
            }
            sim.set_fault_schedule(schedule);

            let pattern = pattern_by_name("UR", hx.clone()).expect("UR pattern");
            let mut traffic = SyntheticWorkload::new(pattern, hx.num_terminals(), load, seed);
            sim.run(&mut traffic, cycles);
            // Stop injecting and let survivors drain (stops early if wedged).
            sim.run(&mut IdleWorkload, 4 * cycles);

            let delivered = sim.stats.total_delivered_packets;
            let dropped = sim.stats.dropped_packets;
            let stranded = sim.pool.live() as u64;
            let attempted = delivered + dropped + stranded;
            let metrics = sim.metrics().map(|m| MetricsRow {
                label: format!("{n_fail} failed links"),
                algo: algo_name.clone(),
                offered: load,
                summary: m.summary(),
            });
            let row = Row {
                algo: algo_name,
                failed_links: n_fail,
                seed,
                attempted_packets: attempted,
                delivered_packets: delivered,
                dropped_packets: dropped,
                stranded_packets: stranded,
                delivered_fraction: if attempted == 0 {
                    1.0
                } else {
                    delivered as f64 / attempted as f64
                },
                mean_latency: sim.stats.mean_latency(),
                p99_latency: sim.stats.hist.quantile(0.99),
                mean_hops: sim.stats.mean_hops(),
                wedged: sim.watchdog_report().is_some(),
            };
            (row, metrics)
        });
    let (rows, metric_rows): (Vec<Row>, Vec<Option<MetricsRow>>) = results.into_iter().unzip();
    let metric_rows: Vec<MetricsRow> = metric_rows.into_iter().flatten().collect();

    // Summary: delivered fraction (averaged over reps) per algo x fails.
    let mut header = vec!["failed links".to_string()];
    header.extend(algos.iter().cloned());
    let table: Vec<Vec<String>> = fails
        .iter()
        .map(|&n| {
            let mut line = vec![n.to_string()];
            for a in &algos {
                let sel: Vec<&Row> = rows
                    .iter()
                    .filter(|r| &r.algo == a && r.failed_links == n)
                    .collect();
                let frac = sel.iter().map(|r| r.delivered_fraction).sum::<f64>() / sel.len() as f64;
                let wedged = sel.iter().filter(|r| r.wedged).count();
                line.push(if wedged > 0 {
                    format!("{frac:.3} ({wedged}/{} wedged)", sel.len())
                } else {
                    format!("{frac:.3}")
                });
            }
            line
        })
        .collect();
    println!("\nFault resilience: delivered fraction vs failed links (UR load {load:.2})");
    println!("{}", render_table(&header, &table));

    if metrics_args.enabled() {
        println!("\nObservability summary (per algorithm, aggregated over all runs)");
        println!("{}", render_metrics_table(&metric_rows));
        write_jsonl(metrics_args.path.as_deref(), &metric_rows);
    }

    write_jsonl(args.get("json"), &rows);
}
