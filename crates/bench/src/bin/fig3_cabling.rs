//! Figure 3 — cabling cost of the Dragonfly relative to the HyperX across
//! system sizes and cable technologies.
//!
//! Every cable of both systems is enumerated from an explicit rack-level
//! placement; prices are representative substitutes for the paper's
//! confidential vendor quotes (see DESIGN.md). The reproduced *shape*:
//! with electrical signaling (DAC where reach allows, AOC beyond) the
//! Dragonfly is cheaper at scale — and the gap widens as signaling rates
//! shrink DAC reach — while passive optical cabling puts the HyperX at
//! cost parity or better.
//!
//! ```text
//! cargo run --release -p hxbench --bin fig3_cabling [-- --json fig3.jsonl]
//! ```

use hxbench::{render_table, write_jsonl, Args, CommonArgs};
use hxcost::{
    dragonfly_cabling, dragonfly_for_nodes, hyperx_cabling, hyperx_for_nodes, CableTech, PriceModel,
};
use hxtopo::Topology;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nodes: usize,
    tech: String,
    hyperx_cost_per_node: f64,
    dragonfly_cost_per_node: f64,
    df_over_hx: f64,
}

fn main() {
    let args = Args::parse();
    // Analytic sweep: the uniform switches parse but only --json applies.
    let common = CommonArgs::parse(&args);
    let prices = PriceModel::default();
    let techs: Vec<(String, CableTech)> = vec![
        (
            "DAC8m+AOC (2.5GHz)".into(),
            CableTech::ElectricalOptical { dac_reach_m: 8.0 },
        ),
        (
            "DAC3m+AOC (25GHz)".into(),
            CableTech::ElectricalOptical { dac_reach_m: 3.0 },
        ),
        (
            "DAC1m+AOC (100GHz)".into(),
            CableTech::ElectricalOptical { dac_reach_m: 1.0 },
        ),
        ("PassiveOptical".into(), CableTech::PassiveOptical),
    ];

    let mut rows = Vec::new();
    for exp in [10usize, 12, 14, 16] {
        let nodes = 1usize << exp;
        let hx = hyperx_for_nodes(nodes);
        let df = dragonfly_for_nodes(nodes);
        let hx_bom = hyperx_cabling(&hx, None);
        let df_bom = dragonfly_cabling(&df, None);
        eprintln!(
            "N={nodes}: {} ({} cables, {:.0} m) vs {} ({} cables, {:.0} m)",
            hx.name(),
            hx_bom.cable_count(),
            hx_bom.total_length_m(),
            df.name(),
            df_bom.cable_count(),
            df_bom.total_length_m()
        );
        for (tname, tech) in &techs {
            let hx_cost = hx_bom.cost_per_node(*tech, &prices);
            let df_cost = df_bom.cost_per_node(*tech, &prices);
            rows.push(Row {
                nodes,
                tech: tname.clone(),
                hyperx_cost_per_node: hx_cost,
                dragonfly_cost_per_node: df_cost,
                df_over_hx: df_cost / hx_cost,
            });
        }
    }

    let header: Vec<String> = ["nodes", "technology", "$/node HX", "$/node DF", "DF/HX"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.tech.clone(),
                format!("{:.2}", r.hyperx_cost_per_node),
                format!("{:.2}", r.dragonfly_cost_per_node),
                format!("{:.3}", r.df_over_hx),
            ]
        })
        .collect();
    println!("Figure 3: Dragonfly cabling cost relative to HyperX (DF/HX < 1 means DF cheaper)");
    println!("{}", render_table(&header, &table));
    write_jsonl(common.json.as_deref(), &rows);
}
