//! Property-based tests for traffic-pattern invariants.

use std::sync::Arc;

use hxtopo::{HyperX, Topology};
use hxtraffic::{pattern_by_name, FIG6_PATTERNS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hyperx_strategy() -> impl Strategy<Value = Arc<HyperX>> {
    // Uniform power-of-two widths: BC needs 2^k terminals and DCR needs
    // reversal-symmetric widths.
    (
        prop::sample::select(vec![2usize, 4]),
        prop::sample::select(vec![2usize, 4]),
    )
        .prop_map(|(w, t)| Arc::new(HyperX::uniform(3, w, t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every Figure 6 pattern yields in-range destinations for every
    /// source.
    #[test]
    fn destinations_in_range(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let n = hx.num_terminals();
        let src = (src_seed % n as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        for name in FIG6_PATTERNS {
            let p = pattern_by_name(name, hx.clone())
                .unwrap_or_else(|| panic!("{name} unavailable"));
            for _ in 0..20 {
                let d = p.dest(src, &mut rng);
                prop_assert!(d < n, "{name}: dest {d} out of range {n}");
            }
        }
    }

    /// The deterministic patterns (BC, S2) are permutations.
    #[test]
    fn deterministic_patterns_are_permutations(hx in hyperx_strategy()) {
        let n = hx.num_terminals();
        let mut rng = SmallRng::seed_from_u64(0);
        for name in ["BC", "S2"] {
            let p = pattern_by_name(name, hx.clone()).unwrap();
            let mut hit = vec![false; n];
            for src in 0..n {
                let d = p.dest(src, &mut rng);
                prop_assert!(!hit[d], "{name}: not a permutation");
                hit[d] = true;
            }
        }
    }

    /// URB complements exactly its target dimension and never the others
    /// deterministically (the others are randomized).
    #[test]
    fn urb_targets_one_dimension(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let n = hx.num_terminals();
        let src = (src_seed % n as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let t = hx.terms_per_router();
        for (name, dim) in [("URBx", 0usize), ("URBy", 1), ("URBz", 2)] {
            let p = pattern_by_name(name, hx.clone()).unwrap();
            let sc = hx.coord_of(src / t);
            for _ in 0..10 {
                let d = p.dest(src, &mut rng);
                let dc = hx.coord_of(d / t);
                prop_assert_eq!(
                    dc.get(dim),
                    hx.width(dim) - 1 - sc.get(dim),
                    "{} must complement dim {}", name, dim
                );
            }
        }
    }

    /// DCR sends every source's traffic to a single (reversed-complement)
    /// router row: the first dims are deterministic, the last is free.
    #[test]
    fn dcr_row_is_deterministic(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let n = hx.num_terminals();
        let src = (src_seed % n as u64) as usize;
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let t = hx.terms_per_router();
        let p = pattern_by_name("DCR", hx.clone()).unwrap();
        let sc = hx.coord_of(src / t);
        let nd = hx.dims();
        for _ in 0..10 {
            let d = p.dest(src, &mut rng);
            let dc = hx.coord_of(d / t);
            for dim in 0..nd - 1 {
                let from = nd - 1 - dim;
                prop_assert_eq!(dc.get(dim), hx.width(from) - 1 - sc.get(from));
            }
        }
    }
}
