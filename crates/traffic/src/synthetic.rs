//! Steady-state synthetic workload: Bernoulli packet injection at a target
//! flit rate with the paper's random 1..=16-flit packet sizes.

use std::sync::Arc;

use hxsim::{PacketDesc, Workload};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::pattern::TrafficPattern;

/// Open-loop injection: each terminal independently starts a packet each
/// cycle with probability `rate / mean_packet_len`, sized uniformly in
/// `[min_len, max_len]`, destination drawn from the pattern.
pub struct SyntheticWorkload {
    pattern: Arc<dyn TrafficPattern>,
    num_terminals: usize,
    min_len: u16,
    max_len: u16,
    pkt_prob: f64,
    rng: SmallRng,
    next_tag: u64,
}

impl SyntheticWorkload {
    /// `rate` is the offered load in flits/terminal/cycle (0.0 ..= 1.0).
    pub fn new(
        pattern: Arc<dyn TrafficPattern>,
        num_terminals: usize,
        rate: f64,
        seed: u64,
    ) -> Self {
        Self::with_lengths(pattern, num_terminals, rate, 1, 16, seed)
    }

    /// Full control over the packet-length range.
    pub fn with_lengths(
        pattern: Arc<dyn TrafficPattern>,
        num_terminals: usize,
        rate: f64,
        min_len: u16,
        max_len: u16,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(min_len >= 1 && min_len <= max_len);
        let mean = f64::from(min_len + max_len) / 2.0;
        SyntheticWorkload {
            pattern,
            num_terminals,
            min_len,
            max_len,
            pkt_prob: rate / mean,
            rng: SmallRng::seed_from_u64(seed ^ 0xA24B_AED4_963E_E407),
            next_tag: 0,
        }
    }

    /// The pattern driving destination selection.
    pub fn pattern_name(&self) -> String {
        self.pattern.name()
    }
}

impl Workload for SyntheticWorkload {
    fn pre_cycle(&mut self, _now: u64, inject: &mut dyn FnMut(PacketDesc) -> bool) {
        for t in 0..self.num_terminals {
            if self.rng.random::<f64>() < self.pkt_prob {
                let len = self.rng.random_range(self.min_len..=self.max_len);
                let dst = self.pattern.dest(t, &mut self.rng) as u32;
                // Open-loop: a refused packet (full source queue) is
                // dropped; offered load keeps pressing regardless.
                let _ = inject(PacketDesc {
                    src: t as u32,
                    dst,
                    len,
                    tag: self.next_tag,
                });
                self.next_tag += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::UniformRandom;

    #[test]
    fn offered_rate_is_respected_in_expectation() {
        let p = Arc::new(UniformRandom::new(64));
        let mut w = SyntheticWorkload::new(p, 64, 0.5, 42);
        let mut flits = 0u64;
        let cycles = 4_000u64;
        for now in 0..cycles {
            w.pre_cycle(now, &mut |d| {
                flits += d.len as u64;
                true
            });
        }
        let rate = flits as f64 / (cycles as f64 * 64.0);
        assert!(
            (rate - 0.5).abs() < 0.02,
            "offered rate {rate} deviates from 0.5"
        );
    }

    #[test]
    fn lengths_stay_in_range() {
        let p = Arc::new(UniformRandom::new(8));
        let mut w = SyntheticWorkload::with_lengths(p, 8, 1.0, 3, 9, 1);
        let mut seen_min = u16::MAX;
        let mut seen_max = 0;
        for now in 0..2_000 {
            w.pre_cycle(now, &mut |d| {
                seen_min = seen_min.min(d.len);
                seen_max = seen_max.max(d.len);
                true
            });
        }
        assert_eq!(seen_min, 3);
        assert_eq!(seen_max, 9);
    }

    #[test]
    fn tags_are_unique() {
        let p = Arc::new(UniformRandom::new(8));
        let mut w = SyntheticWorkload::new(p, 8, 1.0, 2);
        let mut tags = std::collections::HashSet::new();
        for now in 0..500 {
            w.pre_cycle(now, &mut |d| {
                assert!(tags.insert(d.tag), "duplicate tag {}", d.tag);
                true
            });
        }
    }
}
