//! # hxtraffic — synthetic traffic patterns and steady-state workloads
//!
//! Implements the paper's Table 3 patterns (UR, BC, URB, S2, DCR) as
//! [`TrafficPattern`] destination rules, plus the open-loop
//! [`SyntheticWorkload`] injection process (Bernoulli arrivals, packets
//! uniformly sized 1..=16 flits) used for every steady-state experiment in
//! Section 6.1.

mod pattern;
mod synthetic;

pub use pattern::{
    pattern_by_name, BitComplement, DimComplementReverse, Swap2, TrafficPattern, UniformRandom,
    UniformRandomBisection,
};
pub use synthetic::SyntheticWorkload;

/// The pattern names of the paper's Figure 6, in presentation order.
pub const FIG6_PATTERNS: &[&str] = &["UR", "BC", "URBx", "URBy", "S2", "DCR"];
