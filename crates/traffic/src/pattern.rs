//! Synthetic traffic patterns (paper Table 3).
//!
//! | Name | Behaviour |
//! |------|-----------|
//! | UR   | uniform random destination |
//! | BC   | bit complement of the terminal id |
//! | URB  | bit complement in one targeted router dimension, uniform in the others — only that dimension is non-load-balanced |
//! | S2   | "swap 2": even terminals complement the X coordinate, odd terminals the Y coordinate — adversarial but leaves most bandwidth unused |
//! | DCR  | dimension complement reverse: worst-case admissible for 3D; funnels 64 terminals over a single link under DOR |

use std::sync::Arc;

use hxtopo::{HyperX, Topology};
use rand::rngs::SmallRng;
use rand::RngExt;

/// A destination-selection rule.
pub trait TrafficPattern: Send + Sync {
    /// Picks a destination terminal for a packet from `src`.
    fn dest(&self, src: usize, rng: &mut SmallRng) -> usize;
    /// Pattern name, e.g. `"URBy"`.
    fn name(&self) -> String;
}

/// Uniform random traffic over `n` terminals, excluding self-sends.
pub struct UniformRandom {
    n: usize,
}

impl UniformRandom {
    /// `n` = number of terminals (>= 2).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        UniformRandom { n }
    }
}

impl TrafficPattern for UniformRandom {
    fn dest(&self, src: usize, rng: &mut SmallRng) -> usize {
        let d = rng.random_range(0..self.n - 1);
        if d >= src {
            d + 1
        } else {
            d
        }
    }
    fn name(&self) -> String {
        "UR".into()
    }
}

/// Bit complement: terminal `i` sends to `!i` (mod the id width). Requires
/// a power-of-two terminal count.
pub struct BitComplement {
    mask: usize,
}

impl BitComplement {
    /// `n` = number of terminals, must be a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "bit complement needs 2^k terminals");
        BitComplement { mask: n - 1 }
    }
}

impl TrafficPattern for BitComplement {
    fn dest(&self, src: usize, _rng: &mut SmallRng) -> usize {
        !src & self.mask
    }
    fn name(&self) -> String {
        "BC".into()
    }
}

/// Uniform Random Bisection: coordinate complement in `dim`, uniform
/// random in every other dimension and in the terminal index. Saturates
/// the bisection of one dimension while the rest stay load-balanced
/// (Figures 6c/6d).
pub struct UniformRandomBisection {
    hx: Arc<HyperX>,
    dim: usize,
}

impl UniformRandomBisection {
    /// Targets dimension `dim` of `hx`.
    pub fn new(hx: Arc<HyperX>, dim: usize) -> Self {
        assert!(dim < hx.dims());
        UniformRandomBisection { hx, dim }
    }
}

impl TrafficPattern for UniformRandomBisection {
    fn dest(&self, src: usize, rng: &mut SmallRng) -> usize {
        let hx = &self.hx;
        let t = hx.terms_per_router();
        let src_router = src / t;
        let mut c = hx.coord_of(src_router);
        for d in 0..hx.dims() {
            if d == self.dim {
                c.set(d, hx.width(d) - 1 - c.get(d));
            } else {
                c.set(d, rng.random_range(0..hx.width(d)));
            }
        }
        hx.terminal_id(hx.router_at(&c), rng.random_range(0..t))
    }
    fn name(&self) -> String {
        let axis = ["x", "y", "z", "w", "v", "u"][self.dim.min(5)];
        format!("URB{axis}")
    }
}

/// Swap 2: even-numbered terminals complement their X coordinate, odd ones
/// their Y coordinate; everything else (including the terminal index) is
/// preserved, so the pattern is a permutation leaving most of the network's
/// bandwidth unused (Figure 6e).
pub struct Swap2 {
    hx: Arc<HyperX>,
}

impl Swap2 {
    /// Needs at least two dimensions and an even number of terminals per
    /// router (so terminal-id parity equals local-index parity and the
    /// pattern is a permutation, as in the paper's t=8 configuration).
    pub fn new(hx: Arc<HyperX>) -> Self {
        assert!(hx.dims() >= 2, "Swap2 needs X and Y dimensions");
        assert!(
            hx.terms_per_router().is_multiple_of(2),
            "Swap2 needs an even terminal count per router"
        );
        Swap2 { hx }
    }
}

impl TrafficPattern for Swap2 {
    fn dest(&self, src: usize, _rng: &mut SmallRng) -> usize {
        let hx = &self.hx;
        let t = hx.terms_per_router();
        let (src_router, idx) = (src / t, src % t);
        let dim = src % 2; // even terminals use X, odd use Y
        let mut c = hx.coord_of(src_router);
        c.set(dim, hx.width(dim) - 1 - c.get(dim));
        hx.terminal_id(hx.router_at(&c), idx)
    }
    fn name(&self) -> String {
        "S2".into()
    }
}

/// Dimension Complement Reverse: the destination's coordinates are the
/// *reversed and complemented* source coordinates, with the last dimension
/// drawn uniformly — each X-row's terminals distribute over one complement
/// Z-row. Worst-case admissible traffic for 3D HyperX (Figure 6f): under
/// DOR, all `s*t` terminals of a row cross a single Y-dimension link
/// (64:1 oversubscription at the paper's scale).
pub struct DimComplementReverse {
    hx: Arc<HyperX>,
}

impl DimComplementReverse {
    /// Needs at least two dimensions, and reversal-symmetric widths
    /// (`width(d) == width(D-1-d)`) so the reversed-complemented
    /// coordinates stay in range.
    pub fn new(hx: Arc<HyperX>) -> Self {
        assert!(hx.dims() >= 2, "DCR needs at least two dimensions");
        let nd = hx.dims();
        for d in 0..nd {
            assert_eq!(
                hx.width(d),
                hx.width(nd - 1 - d),
                "DCR needs reversal-symmetric dimension widths"
            );
        }
        DimComplementReverse { hx }
    }
}

impl TrafficPattern for DimComplementReverse {
    fn dest(&self, src: usize, rng: &mut SmallRng) -> usize {
        let hx = &self.hx;
        let t = hx.terms_per_router();
        let src_router = src / t;
        let sc = hx.coord_of(src_router);
        let nd = hx.dims();
        let mut c = sc;
        for d in 0..nd - 1 {
            let from = nd - 1 - d;
            c.set(d, hx.width(from) - 1 - sc.get(from));
        }
        c.set(nd - 1, rng.random_range(0..hx.width(nd - 1)));
        hx.terminal_id(hx.router_at(&c), rng.random_range(0..t))
    }
    fn name(&self) -> String {
        "DCR".into()
    }
}

/// Instantiates a pattern by name: `UR`, `BC`, `URBx`/`URBy`/`URBz`, `S2`,
/// `DCR`. Returns `None` for unknown names.
pub fn pattern_by_name(name: &str, hx: Arc<HyperX>) -> Option<Arc<dyn TrafficPattern>> {
    let n = hx.num_terminals();
    Some(match name.to_ascii_uppercase().as_str() {
        "UR" => Arc::new(UniformRandom::new(n)),
        "BC" => Arc::new(BitComplement::new(n)),
        "URBX" => Arc::new(UniformRandomBisection::new(hx, 0)),
        "URBY" => Arc::new(UniformRandomBisection::new(hx, 1)),
        "URBZ" => Arc::new(UniformRandomBisection::new(hx, 2)),
        "S2" => Arc::new(Swap2::new(hx)),
        "DCR" => Arc::new(DimComplementReverse::new(hx)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hx() -> Arc<HyperX> {
        Arc::new(HyperX::uniform(3, 4, 4)) // 256 terminals
    }

    #[test]
    fn ur_never_self_and_covers_range() {
        let p = UniformRandom::new(16);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let d = p.dest(5, &mut rng);
            assert_ne!(d, 5);
            assert!(d < 16);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15, "all non-self destinations reachable");
    }

    #[test]
    fn bc_is_involution() {
        let p = BitComplement::new(256);
        let mut rng = SmallRng::seed_from_u64(0);
        for src in 0..256 {
            let d = p.dest(src, &mut rng);
            assert_eq!(p.dest(d, &mut rng), src);
            assert_ne!(d, src);
        }
    }

    #[test]
    fn urb_complements_target_dim_only() {
        let hx = hx();
        let p = UniformRandomBisection::new(hx.clone(), 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let src = 37usize;
        let sc = hx.coord_of(src / 4);
        let mut other_dim_values = std::collections::HashSet::new();
        for _ in 0..200 {
            let d = p.dest(src, &mut rng);
            let dc = hx.coord_of(d / 4);
            assert_eq!(dc.get(1), 3 - sc.get(1), "target dim must complement");
            other_dim_values.insert((dc.get(0), dc.get(2)));
        }
        assert!(
            other_dim_values.len() > 8,
            "other dims should be randomized, saw {}",
            other_dim_values.len()
        );
    }

    #[test]
    fn s2_is_permutation_split_by_parity() {
        let hx = hx();
        let p = Swap2::new(hx.clone());
        let mut rng = SmallRng::seed_from_u64(0);
        let n = hx.num_terminals();
        let mut targets = vec![false; n];
        for src in 0..n {
            let d = p.dest(src, &mut rng);
            assert!(!targets[d], "S2 must be a permutation");
            targets[d] = true;
            let (sc, dc) = (hx.coord_of(src / 4), hx.coord_of(d / 4));
            let dim = src % 2;
            assert_eq!(dc.get(dim), 3 - sc.get(dim));
            for e in 0..3 {
                if e != dim {
                    assert_eq!(dc.get(e), sc.get(e), "untargeted dim moved");
                }
            }
            assert_eq!(src % 4, d % 4, "terminal index preserved");
        }
        assert!(targets.iter().all(|&t| t));
    }

    #[test]
    fn dcr_reverses_and_complements() {
        let hx = hx();
        let p = DimComplementReverse::new(hx.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        let src = 129usize;
        let sc = hx.coord_of(src / 4);
        for _ in 0..50 {
            let d = p.dest(src, &mut rng);
            let dc = hx.coord_of(d / 4);
            assert_eq!(dc.get(0), 3 - sc.get(2), "dim 0 = complement of dim 2");
            assert_eq!(dc.get(1), 3 - sc.get(1), "dim 1 = complement of dim 1");
        }
    }

    /// The DCR property the paper uses: under DOR all terminals of an
    /// X-row (fixed y,z) converge on the single Y-link into
    /// (comp(z), comp(y), z) at router (comp(z), y, z) — an s*t : 1
    /// oversubscription.
    #[test]
    fn dcr_dor_funnels_a_row_through_one_link() {
        let hx = hx();
        let p = DimComplementReverse::new(hx.clone());
        let mut rng = SmallRng::seed_from_u64(9);
        // Row y=1, z=2 (all x, all terminal indices).
        let mut y_links = std::collections::HashSet::new();
        for x in 0..4 {
            for k in 0..4 {
                let src = hx.terminal_id(hx.router_at(&hxtopo::Coord::new(&[x, 1, 2])), k);
                let d = p.dest(src, &mut rng);
                let dc = hx.coord_of(d / 4);
                // DOR: align X to comp(z)=1, then Y from 1 to comp(y)=2.
                // The Y-hop happens at router (1, 1, 2) -> (1, 2, 2).
                assert_eq!(dc.get(0), 1);
                assert_eq!(dc.get(1), 2);
                y_links.insert((1usize, 1usize, 2usize, dc.get(1)));
            }
        }
        assert_eq!(y_links.len(), 1, "all row traffic shares one Y link");
    }

    #[test]
    fn factory_resolves_all_names() {
        let hx = hx();
        for name in ["UR", "BC", "URBx", "URBy", "URBz", "S2", "DCR"] {
            assert!(pattern_by_name(name, hx.clone()).is_some(), "{name}");
        }
        assert!(pattern_by_name("bogus", hx).is_none());
    }
}
