//! Universal Global Adaptive Load-balancing (UGAL, Singh '05; Table 2
//! row 3).
//!
//! At the *source router only*, UGAL weighs the minimal (DOR) path against
//! one Valiant path through a random intermediate using source-local
//! congestion (`congestion x hopcount` per path first hop) and commits to
//! the cheaper. Once committed the packet is oblivious: this is exactly the
//! deficiency the paper's incremental algorithms fix — congestion that is
//! not visible at the source router (e.g. the URBy pattern, Figure 6d)
//! cannot influence the decision.

use std::sync::Arc;

use hxtopo::{HyperX, Topology};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm, NO_INTERMEDIATE};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};
use crate::valiant::valiant_continue;

/// Topology-agnostic UGAL: minimal vs one random Valiant candidate.
pub struct Ugal {
    base: HxBase,
}

impl Ugal {
    /// Creates UGAL for `hx` with `num_vcs` VCs split into two phase
    /// classes.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        Ugal {
            base: HxBase::new(hx, num_vcs, 2),
        }
    }
}

impl RoutingAlgorithm for Ugal {
    fn name(&self) -> &'static str {
        "UGAL"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        if ctx.from_terminal && ctx.state.intermediate == NO_INTERMEDIATE {
            // Minimal candidate: pure DOR, entirely in phase 1 / class 1.
            let min_port = self
                .base
                .dor_port(ctx.router, ctx.dst_router)
                .expect("route() not called at destination");
            if ctx.view.port_live(min_port) {
                let h_min = self.base.hops(ctx.router, ctx.dst_router);
                out.push(self.base.candidate(
                    ctx.view,
                    min_port,
                    1,
                    h_min,
                    Commit::SetValiant {
                        intermediate: ctx.router as u32, // trivially "reached"
                        phase: 1,
                    },
                ));
            }
            // Valiant candidate through one uniformly random intermediate
            // (skipped when its first hop is dead; redrawn next cycle).
            let x = rng.random_range(0..self.base.hx.num_routers() as u32) as usize;
            if x != ctx.router && x != ctx.dst_router {
                let val_port = self.base.dor_port(ctx.router, x).expect("x != router");
                if !ctx.view.port_live(val_port) {
                    return;
                }
                let h_val = self.base.hops(ctx.router, x) + self.base.hops(x, ctx.dst_router);
                out.push(self.base.candidate(
                    ctx.view,
                    val_port,
                    0,
                    h_val,
                    Commit::SetValiant {
                        intermediate: x as u32,
                        phase: 0,
                    },
                ));
            }
            return;
        }
        valiant_continue(&self.base, ctx, out);
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "UGAL",
            dimension_ordered: true,
            style: RoutingStyle::Source,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "none",
            packet_contents: "int. addr.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn source_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: 0,
            input_vc: 0,
            from_terminal: true,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    /// With an idle network, the minimal candidate has weight 0 and fewer
    /// hops, so any (weight, hops)-minimizing selector picks minimal.
    #[test]
    fn idle_network_prefers_minimal() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let ugal = Ugal::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        ugal.route(&source_ctx(&hx, 0, 15, &view), &mut rng, &mut out);
        assert!(!out.is_empty());
        let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
        assert_eq!(best.class, 1, "minimal candidate is the phase-1 one");
        assert!(matches!(best.commit, Commit::SetValiant { phase: 1, .. }));
    }

    /// Congesting the minimal first hop makes the Valiant candidate win —
    /// but *only* when the congestion is at the source (the paper's point).
    #[test]
    fn source_congestion_triggers_valiant() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let ugal = Ugal::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 0]));
        // Congest the single minimal port heavily.
        let min_port = hx.port_towards(src, 0, 1);
        view.congest_port(min_port, 16);
        view.queues[min_port] = 600; // deep backlog: minimal clearly loses
        let mut rng = SmallRng::seed_from_u64(2);
        // Sample many decisions; most should pick a Valiant route whose
        // first hop avoids the congested port.
        let mut val_wins = 0;
        for _ in 0..100 {
            let mut out = Vec::new();
            ugal.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
            let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
            if let Commit::SetValiant { phase: 0, .. } = best.commit {
                assert_ne!(best.port as usize, min_port);
                val_wins += 1;
            }
        }
        assert!(val_wins > 60, "only {val_wins}/100 decisions load-balanced");
    }

    /// A committed packet continues with plain Valiant mechanics.
    #[test]
    fn committed_packet_is_oblivious() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let ugal = Ugal::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ctx = source_ctx(&hx, 5, 15, &view);
        ctx.from_terminal = false;
        ctx.state = PacketRouteState {
            intermediate: 10,
            phase: 0,
            deroute_mask: 0,
        };
        let mut out = Vec::new();
        ugal.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 1, "no adaptivity after the source decision");
        assert_eq!(out[0].class, 0);
    }
}
