//! Dimension Order Routing (DOR) — the deterministic minimal baseline
//! (Dally & Seitz's Torus Routing Chip lineage, Table 2 row 1).
//!
//! On a HyperX, DOR aligns dimensions lowest-first, taking exactly one hop
//! per unaligned dimension. Because no packet ever moves twice in the same
//! dimension and dimensions are visited in a fixed order, the channel
//! dependency graph is acyclic and a single resource class suffices.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// Deterministic dimension-order routing.
pub struct Dor {
    base: HxBase,
}

impl Dor {
    /// Creates DOR for `hx` with `num_vcs` virtual channels (all spent on
    /// head-of-line-blocking relief — DOR needs only one class).
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        Dor {
            base: HxBase::new(hx, num_vcs, 1),
        }
    }
}

impl RoutingAlgorithm for Dor {
    fn name(&self) -> &'static str {
        "DOR"
    }

    fn num_classes(&self) -> usize {
        1
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let port = self
            .base
            .dor_port(ctx.router, ctx.dst_router)
            .expect("route() must not be called at the destination router");
        // DOR is deterministic: with its one legal port down the packet
        // can only wait for a revival (fault-oblivious baselines degrade
        // under failures; the watchdog reports permanent stalls).
        if !ctx.view.port_live(port) {
            return;
        }
        let hops = self.base.hops(ctx.router, ctx.dst_router);
        out.push(self.base.candidate(ctx.view, port, 0, hops, Commit::None));
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "DOR",
            dimension_ordered: true,
            style: RoutingStyle::Oblivious,
            vcs_required: "1",
            deadlock: "R.R.",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: 0,
            input_vc: 0,
            from_terminal: true,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    #[test]
    fn routes_lowest_dimension_first() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let dor = Dor::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 3, 1]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        dor.route(&ctx(&hx, src, dst, &view), &mut rng, &mut out);
        assert_eq!(out.len(), 1, "DOR is deterministic");
        let expect = hx.port_towards(src, 0, 2);
        assert_eq!(out[0].port as usize, expect);
        assert_eq!(out[0].class, 0);
        assert_eq!(out[0].hops, 3);
        assert_eq!(out[0].commit, Commit::None);
    }

    #[test]
    fn skips_aligned_dimensions() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let dor = Dor::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[1, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 0, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        dor.route(&ctx(&hx, src, dst, &view), &mut rng, &mut out);
        assert_eq!(out[0].port as usize, hx.port_towards(src, 2, 3));
        assert_eq!(out[0].hops, 1);
    }

    #[test]
    fn full_path_visits_each_dim_once() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let dor = Dor::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(1);
        let dst = hx.router_at(&Coord::new(&[3, 2, 1]));
        let mut cur = hx.router_at(&Coord::new(&[0, 0, 0]));
        let mut hops = 0;
        while cur != dst {
            let mut out = Vec::new();
            dor.route(&ctx(&hx, cur, dst, &view), &mut rng, &mut out);
            let (d, to) = hx.port_dim_target(cur, out[0].port as usize).unwrap();
            cur = hx.router_at(&hx.coord_of(cur).with(d, to));
            hops += 1;
            assert!(hops <= 3, "DOR path too long");
        }
        assert_eq!(hops, 3);
    }

    #[test]
    fn dead_minimal_port_yields_no_candidates() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let dor = Dor::new(hx.clone(), 4);
        let mut view = MockView::idle(hx.max_ports(), 4, 16);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2]));
        view.kill_port(hx.port_towards(src, 0, 2));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        dor.route(&ctx(&hx, src, dst, &view), &mut rng, &mut out);
        assert!(out.is_empty(), "DOR cannot route around a dead port");
    }

    #[test]
    fn weight_reflects_congestion_times_hops() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let dor = Dor::new(hx.clone(), 4);
        let mut view = MockView::idle(hx.max_ports(), 4, 16);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2]));
        let port = hx.port_towards(src, 0, 2);
        view.congest_port(port, 6); // 6 flits on each of the 4 VCs
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        dor.route(&ctx(&hx, src, dst, &view), &mut rng, &mut out);
        assert_eq!(out[0].weight, (6 * 4 + crate::weight::HOP_LATENCY) * 2);
    }
}
