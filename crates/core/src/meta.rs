//! Implementation-comparison metadata (paper Table 1).
//!
//! Each algorithm reports what it demands from the router architecture and
//! the network protocol; `tab1_comparison` in the bench crate renders the
//! table. DimWAR and OmniWAR are the only adaptive algorithms with empty
//! "architecture requirements" and "packet contents" columns — that is the
//! paper's practicality claim.

/// Where the adaptive decision happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingStyle {
    /// No adaptivity (DOR, VAL).
    Oblivious,
    /// One decision at the source router (UGAL, Clos-AD).
    Source,
    /// A decision at every hop (DAL, DimWAR, OmniWAR).
    Incremental,
}

impl std::fmt::Display for RoutingStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingStyle::Oblivious => "oblivious",
            RoutingStyle::Source => "source",
            RoutingStyle::Incremental => "incremental",
        })
    }
}

/// One row of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct AlgoMeta {
    /// Algorithm name.
    pub name: &'static str,
    /// Whether dimensions are traversed in a fixed order.
    pub dimension_ordered: bool,
    /// Source vs incremental vs oblivious.
    pub style: RoutingStyle,
    /// VCs required for deadlock freedom, as the paper writes it
    /// (e.g. `"2"`, `"N+M"`, `"1+1e"`).
    pub vcs_required: &'static str,
    /// Deadlock-handling mechanism (RR = restricted routes, RC = resource
    /// classes, DC = distance classes).
    pub deadlock: &'static str,
    /// Special router-architecture requirements ("none" for the WARs).
    pub arch_requirements: &'static str,
    /// Extra per-packet state the protocol must carry ("none" for the
    /// WARs — everything is encoded in the VC id).
    pub packet_contents: &'static str,
}

/// The five rows of the paper's Table 1, in paper order.
pub fn table1_rows() -> Vec<AlgoMeta> {
    vec![
        AlgoMeta {
            name: "UGAL",
            dimension_ordered: true,
            style: RoutingStyle::Source,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "none",
            packet_contents: "int. addr.",
        },
        AlgoMeta {
            name: "Clos-AD",
            dimension_ordered: true,
            style: RoutingStyle::Source,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "seq. alloc.",
            packet_contents: "int. addr.",
        },
        AlgoMeta {
            name: "DAL",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "1+1e",
            deadlock: "escape paths",
            arch_requirements: "escape paths",
            packet_contents: "N-bit field",
        },
        AlgoMeta {
            name: "DimWAR",
            dimension_ordered: true,
            style: RoutingStyle::Incremental,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "none",
            packet_contents: "none",
        },
        AlgoMeta {
            name: "OmniWAR",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "N+M",
            deadlock: "R.R. & D.C.",
            arch_requirements: "none",
            packet_contents: "none",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_paper_rows_in_order() {
        let rows = table1_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, ["UGAL", "Clos-AD", "DAL", "DimWAR", "OmniWAR"]);
    }

    #[test]
    fn wars_require_nothing_special() {
        for row in table1_rows() {
            if row.name == "DimWAR" || row.name == "OmniWAR" {
                assert_eq!(row.arch_requirements, "none");
                assert_eq!(row.packet_contents, "none");
                assert_eq!(row.style, RoutingStyle::Incremental);
            }
        }
    }

    #[test]
    fn only_wars_and_dal_are_incremental() {
        for row in table1_rows() {
            let incr = row.style == RoutingStyle::Incremental;
            let expect = matches!(row.name, "DAL" | "DimWAR" | "OmniWAR");
            assert_eq!(incr, expect, "{}", row.name);
        }
    }
}
