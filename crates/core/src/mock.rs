//! A table-driven [`RouterView`] for unit tests and micro-benchmarks.
//!
//! Lets tests assert adaptive behaviour ("given this congestion, the
//! algorithm deroutes") without spinning up the cycle-accurate simulator,
//! and lets the Criterion benches measure pure routing-decision cost.

use crate::api::RouterView;

/// A fully materialized congestion state for one router.
#[derive(Clone, Debug)]
pub struct MockView {
    vcs: usize,
    cap: usize,
    /// `occ[port][vc]` — downstream occupancy in flits.
    pub occ: Vec<Vec<usize>>,
    /// Output queue backlog per port.
    pub queues: Vec<usize>,
    /// Whether `(port, vc)` is claimed by an in-flight packet.
    pub claimed: Vec<Vec<bool>>,
    /// Whether each port's outgoing link is up.
    pub live: Vec<bool>,
    /// Link-health penalty per port (gray-failure pressure in weight
    /// units; see `RouterView::link_health_penalty`).
    pub health: Vec<u64>,
}

impl MockView {
    /// An idle router: all buffers empty, nothing claimed.
    pub fn idle(ports: usize, vcs: usize, cap: usize) -> Self {
        MockView {
            vcs,
            cap,
            occ: vec![vec![0; vcs]; ports],
            queues: vec![0; ports],
            claimed: vec![vec![false; vcs]; ports],
            live: vec![true; ports],
            health: vec![0; ports],
        }
    }

    /// Sets every VC of `port` to `occ` occupied flits.
    pub fn congest_port(&mut self, port: usize, occ: usize) {
        assert!(occ <= self.cap);
        for vc in 0..self.vcs {
            self.occ[port][vc] = occ;
        }
    }

    /// Marks `port`'s outgoing link as failed.
    pub fn kill_port(&mut self, port: usize) {
        self.live[port] = false;
    }
}

impl RouterView for MockView {
    fn num_vcs(&self) -> usize {
        self.vcs
    }
    fn free_space(&self, port: usize, vc: usize) -> usize {
        self.cap - self.occ[port][vc]
    }
    fn capacity(&self, _port: usize, _vc: usize) -> usize {
        self.cap
    }
    fn vc_claimed(&self, port: usize, vc: usize) -> bool {
        self.claimed[port][vc]
    }
    fn queue_len(&self, port: usize) -> usize {
        self.queues[port]
    }
    fn port_live(&self, port: usize) -> bool {
        self.live[port]
    }
    fn link_health_penalty(&self, port: usize) -> u64 {
        self.health[port]
    }
}
