//! Minimal Adaptive routing (MinAD) — the adaptive-but-minimal baseline
//! discussed in Section 2.2, and the "underlying minimal algorithm" of
//! OmniWAR (Section 6.1).
//!
//! At every hop the packet may align *any* unaligned dimension, choosing
//! the least-weighted minimal port. Because dimensions are visited in
//! arbitrary order, restricted routes do not apply; distance classes (one
//! per hop, at most N hops) provide deadlock freedom. Equivalent to
//! OmniWAR with `M = 0`, but kept as its own type so benches can compare
//! the code paths.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// Minimal adaptive routing over distance classes.
pub struct MinAd {
    base: HxBase,
}

impl MinAd {
    /// Creates MinAD for `hx` with `num_vcs` VCs split into `dims`
    /// distance classes.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        let dims = hx.dims();
        MinAd {
            base: HxBase::new(hx, num_vcs, dims),
        }
    }
}

impl RoutingAlgorithm for MinAd {
    fn name(&self) -> &'static str {
        "MinAD"
    }

    fn num_classes(&self) -> usize {
        self.base.hx.dims()
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let remaining = cur.unaligned_count(&dst);
        let out_class = if ctx.from_terminal {
            0
        } else {
            self.base.map.class_of(ctx.input_vc) + 1
        };
        debug_assert!(out_class < self.num_classes());
        for d in 0..hx.dims() {
            if cur.aligned(&dst, d) {
                continue;
            }
            let port = hx.port_towards(ctx.router, d, dst.get(d));
            out.push(
                self.base
                    .candidate(ctx.view, port, out_class, remaining, Commit::None),
            );
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "MinAD",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "N",
            deadlock: "R.R. & D.C.",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClassMap, PacketRouteState};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    #[test]
    fn offers_only_minimal_ports_in_all_unaligned_dims() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let algo = MinAd::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 0]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        let ctx = RouteCtx {
            router: src,
            input_port: 0,
            input_vc: 0,
            from_terminal: true,
            dst_router: dst,
            dst_terminal: dst * 2,
            pkt_len: 4,
            state: PacketRouteState::default(),
            view: &view,
        };
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 2);
        for c in &out {
            let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
            assert_eq!(to, hx.coord_of(dst).get(d), "non-minimal port offered");
            assert_eq!(c.hops, 2);
        }
    }

    #[test]
    fn class_is_hop_index() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let algo = MinAd::new(hx.clone(), 9);
        let map = ClassMap::new(9, 3);
        let view = MockView::idle(hx.max_ports(), 9, 64);
        let src = hx.router_at(&Coord::new(&[1, 1, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        let ctx = RouteCtx {
            router: src,
            input_port: hx.port_towards(src, 0, 0),
            input_vc: map.first_vc(0),
            from_terminal: false,
            dst_router: dst,
            dst_terminal: dst * 2,
            pkt_len: 4,
            state: PacketRouteState::default(),
            view: &view,
        };
        algo.route(&ctx, &mut rng, &mut out);
        assert!(out.iter().all(|c| c.class == 1));
    }
}
