//! Dimensionally Adaptive Load-balancing (DAL) — the original HyperX
//! routing algorithm (Ahn et al., SC'09), reproduced for the Section 4.2
//! analysis of *why it is impractical*.
//!
//! DAL deroutes at most once per dimension, in any dimension order,
//! tracking derouted dimensions in an N-bit packet field. Deadlock freedom
//! relies on Duato-style *escape paths*: a dedicated DOR escape class whose
//! correctness on large-scale routers requires **atomic queue allocation**
//! (a downstream VC must be completely empty before a packet may claim it).
//! Under realistic channel latencies atomic allocation caps channel
//! utilization at `PktSize x NumVcs / CreditRoundTrip` — the paper's
//! Section 4.2 throughput ceiling, reproduced by the `sec42_atomic_queue`
//! bench. The simulator's `atomic_queue_allocation` config models this.
//!
//! For this reason DAL is excluded from the Figure 6/8 comparisons, exactly
//! as in the paper.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// The adaptive resource class.
pub const CLASS_ADAPTIVE: usize = 0;
/// The escape (DOR) resource class.
pub const CLASS_ESCAPE: usize = 1;

/// Weight penalty keeping packets off the escape class while adaptive
/// candidates are viable (escape is a last resort by construction).
const ESCAPE_BIAS: u64 = 1 << 20;

/// Dimensionally adaptive load-balancing with an escape class.
pub struct Dal {
    base: HxBase,
}

impl Dal {
    /// Creates DAL for `hx` with `num_vcs` VCs split between the adaptive
    /// and escape classes.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        Dal {
            base: HxBase::new(hx, num_vcs, 2),
        }
    }
}

impl RoutingAlgorithm for Dal {
    fn name(&self) -> &'static str {
        "DAL"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let remaining = cur.unaligned_count(&dst);
        debug_assert!(remaining > 0);

        let on_escape = !ctx.from_terminal && self.base.map.class_of(ctx.input_vc) == CLASS_ESCAPE;

        if !on_escape {
            for d in 0..hx.dims() {
                if cur.aligned(&dst, d) {
                    continue;
                }
                // Minimal hop.
                let min_port = hx.port_towards(ctx.router, d, dst.get(d));
                out.push(self.base.candidate(
                    ctx.view,
                    min_port,
                    CLASS_ADAPTIVE,
                    remaining,
                    Commit::None,
                ));
                // One deroute per dimension, tracked in the packet's N-bit
                // field (Table 1's "packet contents" for DAL).
                if ctx.state.deroute_mask & (1 << d) == 0 {
                    for c in 0..hx.width(d) {
                        if c == cur.get(d) || c == dst.get(d) {
                            continue;
                        }
                        let port = hx.port_towards(ctx.router, d, c);
                        out.push(self.base.candidate(
                            ctx.view,
                            port,
                            CLASS_ADAPTIVE,
                            remaining + 1,
                            Commit::Deroute { dim: d as u8 },
                        ));
                    }
                }
            }
        }

        // Escape candidate: DOR on the escape class. Once a packet is on
        // the escape class it stays there (simplest sound Duato variant).
        let esc_port = self
            .base
            .dor_port(ctx.router, ctx.dst_router)
            .expect("not at destination");
        let mut esc =
            self.base
                .candidate(ctx.view, esc_port, CLASS_ESCAPE, remaining, Commit::None);
        if !on_escape {
            esc.weight = esc.weight.saturating_add(ESCAPE_BIAS);
        }
        out.push(esc);
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "DAL",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "1+1e",
            deadlock: "escape paths",
            arch_requirements: "escape paths",
            packet_contents: "N-bit field",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClassMap, PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn make_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        from_terminal: bool,
        input_vc: usize,
        deroute_mask: u8,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: if from_terminal {
                0
            } else {
                hx.terms_per_router()
            },
            input_vc,
            from_terminal,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState {
                deroute_mask,
                ..PacketRouteState::default()
            },
            view,
        }
    }

    #[test]
    fn derouted_dims_offer_no_more_deroutes() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = Dal::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        // Dimension 0 already derouted.
        algo.route(
            &make_ctx(&hx, src, dst, false, 0, 0b01, &view),
            &mut rng,
            &mut out,
        );
        for c in &out {
            if c.class as usize == CLASS_ADAPTIVE {
                let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
                if d == 0 {
                    assert_eq!(to, 2, "deroute in already-derouted dim offered");
                }
            }
        }
        // Dim 1 deroutes still available, and commits record the dimension.
        let dim1_deroutes: Vec<_> = out
            .iter()
            .filter(|c| matches!(c.commit, Commit::Deroute { dim: 1 }))
            .collect();
        assert_eq!(dim1_deroutes.len(), 2);
    }

    #[test]
    fn escape_candidate_always_present_and_biased() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = Dal::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = 0;
        let dst = hx.router_at(&Coord::new(&[3, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        let escapes: Vec<_> = out
            .iter()
            .filter(|c| c.class as usize == CLASS_ESCAPE)
            .collect();
        assert_eq!(escapes.len(), 1);
        assert!(escapes[0].weight >= ESCAPE_BIAS, "escape not biased away");
        // In an idle network the best candidate is adaptive.
        let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
        assert_eq!(best.class as usize, CLASS_ADAPTIVE);
    }

    #[test]
    fn once_on_escape_stays_on_escape() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = Dal::new(hx.clone(), 8);
        let map = ClassMap::new(8, 2);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[1, 0]));
        let dst = hx.router_at(&Coord::new(&[3, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, map.first_vc(CLASS_ESCAPE), 0, &view),
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class as usize, CLASS_ESCAPE);
        // Escape follows DOR exactly.
        let (d, to) = hx.port_dim_target(src, out[0].port as usize).unwrap();
        assert_eq!((d, to), (0, 3));
    }
}
