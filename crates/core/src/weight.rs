//! The `congestion x hopcount` weight function shared by all adaptive
//! algorithms (paper Sections 5.1 step 3 and 5.2 step 4).

use crate::api::{ClassMap, RouterView};

/// Congestion estimate of sending through `port`: the total downstream
/// buffer occupancy across *all* VCs of the port plus the backlog of the
/// output queue feeding it. Units are flits.
///
/// Port-level (rather than per-VC-class) sensing matches the paper's
/// routers, which "assess all valid outputs with their current detected
/// congestion": the channel drains every VC at the same 1 flit/cycle, so
/// the queued work ahead of a new flit is the whole port's backlog. This
/// is also what gives source-adaptive routing its characteristic blindness
/// on URBy (Figure 6d): remote congestion back-pressures *all* of the
/// source's first-hop ports equally, so the minimal path never looks worse
/// than the Valiant one and UGAL degenerates to DOR.
///
/// The link-health penalty ([`RouterView::link_health_penalty`]) rides on
/// top: a link shedding CRC errors or flapping costs replay bandwidth that
/// plain occupancy cannot see yet, so gray-failing links are priced like
/// congested ones and adaptive algorithms steer around them before they
/// die. Zero on healthy links, so fault-free behaviour is unchanged.
#[inline]
pub fn port_congestion(view: &dyn RouterView, port: usize) -> u64 {
    let occ: u64 = (0..view.num_vcs())
        .map(|vc| view.occupancy(port, vc) as u64)
        .sum();
    occ + view.queue_len(port) as u64 + view.link_health_penalty(port)
}

/// Congestion estimate for a specific `(port, class)` candidate: the
/// larger of the port-level pressure ([`port_congestion`]) and the
/// candidate class's own pressure scaled to the port range.
///
/// The class term matters for algorithms whose resource classes own few
/// VCs (OmniWAR's distance classes own exactly one): a full class is a
/// full channel *for this packet* even while the port's other VCs sit
/// idle, so without it the congestion signal saturates at
/// `class_vcs / num_vcs` of its true level and the algorithm under-
/// deroutes (visible as S2 throughput loss). The port term preserves the
/// source-adaptive blindness property above: back-pressure seen by *any*
/// class of a port is pressure for all of them.
#[inline]
pub fn candidate_congestion(
    view: &dyn RouterView,
    port: usize,
    map: &ClassMap,
    class: usize,
) -> u64 {
    let vcs = map.vcs_of(class);
    let n = vcs.len() as u64;
    let occ_cls: u64 = vcs.map(|vc| view.occupancy(port, vc) as u64).sum();
    let class_pressure = occ_cls * view.num_vcs() as u64 / n.max(1)
        + view.queue_len(port) as u64
        + view.link_health_penalty(port);
    class_pressure.max(port_congestion(view, port))
}

/// Fixed per-hop latency folded into the weight, in cycles: roughly one
/// channel traversal (50) plus one crossbar traversal (50) at the paper's
/// timing. This is the "tuning" the paper alludes to (Section 6.2: "all 4
/// adaptive routing algorithms have been tuned to react quickly to
/// change"): without a fixed-latency term, a single queued flit of
/// congestion difference would trigger a deroute whose extra hop costs
/// ~100 cycles — adaptive algorithms would burn bandwidth and latency on
/// transient noise and lose to DOR on latency-sensitive phases.
pub const HOP_LATENCY: u64 = 100;

/// The latency estimate all adaptive algorithms minimize:
/// `(congestion + HOP_LATENCY) x hopcount`.
///
/// `hops` is the total remaining hop count *including* the candidate hop.
/// The congestion term is the paper's `congestion x hopcount`; the
/// `HOP_LATENCY x hopcount` term accounts for the pipeline latency of the
/// hops themselves, so in an idle network minimal paths strictly win and a
/// deroute is only taken once the minimal path's queueing exceeds about
/// one hop's worth of latency.
#[inline]
pub fn weight(congestion: u64, hops: usize) -> u64 {
    (congestion + HOP_LATENCY) * hops as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockView;

    #[test]
    fn idle_congestion_is_zero() {
        let v = MockView::idle(4, 8, 16);
        assert_eq!(port_congestion(&v, 0), 0);
        assert_eq!(port_congestion(&v, 3), 0);
    }

    #[test]
    fn congestion_sums_all_vcs() {
        let mut v = MockView::idle(2, 4, 16);
        v.occ[1][0] = 8;
        v.occ[1][1] = 4;
        assert_eq!(port_congestion(&v, 1), 12);
        assert_eq!(port_congestion(&v, 0), 0);
    }

    #[test]
    fn congestion_includes_output_queue() {
        let mut v = MockView::idle(2, 4, 16);
        v.queues[0] = 5;
        v.occ[0][2] = 3;
        assert_eq!(port_congestion(&v, 0), 8);
    }

    #[test]
    fn congestion_includes_link_health_penalty() {
        let mut v = MockView::idle(2, 4, 16);
        v.health[1] = 250;
        assert_eq!(port_congestion(&v, 0), 0);
        assert_eq!(port_congestion(&v, 1), 250);
        // A gray-failing idle port must weigh worse than a lightly
        // congested healthy one.
        v.queues[0] = 5;
        assert!(port_congestion(&v, 1) > port_congestion(&v, 0));
    }

    #[test]
    fn weight_combines_congestion_and_hop_latency() {
        assert_eq!(weight(0, 3), HOP_LATENCY * 3);
        assert_eq!(weight(7, 2), (7 + HOP_LATENCY) * 2);
        assert_eq!(weight(3, 0), 0);
    }

    #[test]
    fn idle_minimal_strictly_beats_idle_deroute() {
        // The tuning property: at zero congestion, fewer hops wins by a
        // full HOP_LATENCY margin, not just a tie-break.
        assert!(weight(0, 3) + HOP_LATENCY <= weight(0, 4));
    }
}
