//! Omni-dimensional Weighted Adaptive Routing (OmniWAR) — paper
//! Section 5.2. The heavy-weight incremental adaptive algorithm.
//!
//! OmniWAR traverses *any* unaligned dimension at any time and may take up
//! to `M` deroutes anywhere along the path, exploiting all of HyperX's path
//! diversity. Deadlock avoidance uses **distance classes**: every
//! router-to-router hop moves to the next VC (`VC_out = VC_in + 1`), which
//! makes the channel dependency graph trivially acyclic. With `N + M`
//! classes (N = dimensions) a packet can afford `M` deroutes; derouting is
//! allowed exactly while the remaining classes exceed the remaining
//! minimal hops (Section 5.2 step 2).
//!
//! Like DimWAR, no routing state lives in the packet: the hop index *is*
//! the input VC class.
//!
//! The optional `restrict_backtoback` optimization (Section 5.2, last
//! paragraph) forbids a second consecutive deroute in the same dimension.
//! It needs no packet state either: arriving on a dimension-`d` channel
//! with dimension `d` still unaligned proves the previous hop was a
//! deroute in `d` (a minimal hop would have aligned it).

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// Omni-dimensional weighted adaptive routing.
pub struct OmniWar {
    base: HxBase,
    /// Total distance classes (N + M).
    classes: usize,
    restrict_backtoback: bool,
}

impl OmniWar {
    /// Creates OmniWAR with `num_vcs` VCs and `deroutes` allowed deroutes
    /// (`M`); the class count is `dims + deroutes` and must fit in
    /// `num_vcs`. Back-to-back same-dimension deroutes are restricted.
    ///
    /// # Panics
    /// Panics if `dims + deroutes > num_vcs`.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize, deroutes: usize) -> Self {
        Self::with_options(hx, num_vcs, deroutes, true)
    }

    /// Creates OmniWAR using every VC as a distance class, i.e.
    /// `M = num_vcs - dims` deroutes — the configuration the paper
    /// evaluates (8 VCs on a 3D network: M = 5).
    pub fn max_deroutes(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        let dims = hx.dims();
        assert!(num_vcs >= dims, "need at least one VC per dimension");
        Self::new(hx, num_vcs, num_vcs - dims)
    }

    /// Full-control constructor (see [`Self::new`]).
    pub fn with_options(
        hx: Arc<HyperX>,
        num_vcs: usize,
        deroutes: usize,
        restrict_backtoback: bool,
    ) -> Self {
        let classes = hx.dims() + deroutes;
        assert!(
            classes <= num_vcs,
            "N+M = {classes} distance classes cannot fit in {num_vcs} VCs"
        );
        OmniWar {
            base: HxBase::new(hx, num_vcs, classes),
            classes,
            restrict_backtoback,
        }
    }

    /// The number of deroutes this instance may take (`M`).
    pub fn deroutes(&self) -> usize {
        self.classes - self.base.hx.dims()
    }
}

impl RoutingAlgorithm for OmniWar {
    fn name(&self) -> &'static str {
        "OmniWAR"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let remaining = cur.unaligned_count(&dst);
        debug_assert!(remaining > 0, "route() not called at destination");

        // Distance class of the outgoing hop: 0 at the source router,
        // input class + 1 afterwards.
        let out_class = if ctx.from_terminal {
            0
        } else {
            self.base.map.class_of(ctx.input_vc) + 1
        };
        debug_assert!(
            out_class < self.classes,
            "distance classes exhausted: the deroute guard was violated"
        );
        // Classes still available after this hop.
        let classes_left = self.classes - 1 - out_class;
        // Derouting keeps `remaining` unchanged, so it needs a full
        // `remaining` classes afterwards; minimal hops need remaining - 1.
        let may_deroute = classes_left >= remaining;
        debug_assert!(
            classes_left >= remaining - 1,
            "cannot even finish minimally"
        );

        // Back-to-back restriction: arriving on a network channel of
        // dimension d with d still unaligned implies the last hop was a
        // deroute in d.
        let blocked_dim = if self.restrict_backtoback && !ctx.from_terminal {
            hx.port_dim_target(ctx.router, ctx.input_port)
                .map(|(d, _)| d)
                .filter(|&d| !cur.aligned(&dst, d))
        } else {
            None
        };

        for d in 0..hx.dims() {
            if cur.aligned(&dst, d) {
                continue;
            }
            // Minimal hop in this dimension.
            let min_port = hx.port_towards(ctx.router, d, dst.get(d));
            let min_live = ctx.view.port_live(min_port);
            if min_live {
                out.push(self.base.candidate(
                    ctx.view,
                    min_port,
                    out_class,
                    remaining,
                    Commit::None,
                ));
            }
            // Deroutes in this dimension. The back-to-back restriction is
            // an optimization, not a correctness requirement, so it is
            // waived when the dimension's minimal port is dead (otherwise
            // a one-dimension-left packet could stall with deroute budget
            // to spare). A packet whose budget is exhausted cannot escape
            // a dead minimal port — the watchdog reports it.
            if may_deroute && (blocked_dim != Some(d) || !min_live) {
                for c in 0..hx.width(d) {
                    if c == cur.get(d) || c == dst.get(d) {
                        continue;
                    }
                    let port = hx.port_towards(ctx.router, d, c);
                    if !ctx.view.port_live(port) {
                        continue;
                    }
                    out.push(self.base.candidate(
                        ctx.view,
                        port,
                        out_class,
                        remaining + 1,
                        Commit::None,
                    ));
                }
            }
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "OmniWAR",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "N+M",
            deadlock: "R.R. & D.C.",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClassMap, PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn make_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        from_terminal: bool,
        input_port: usize,
        input_vc: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port,
            input_vc,
            from_terminal,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    #[test]
    fn offers_all_unaligned_dimensions() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        // Per unaligned dim (3 of them): 1 minimal + 2 deroutes.
        assert_eq!(out.len(), 9);
        let dims: std::collections::HashSet<usize> = out
            .iter()
            .map(|c| hx.port_dim_target(src, c.port as usize).unwrap().0)
            .collect();
        assert_eq!(dims.len(), 3, "candidates span all unaligned dims");
        // First hop from a terminal rides distance class 0.
        assert!(out.iter().all(|c| c.class == 0));
    }

    #[test]
    fn distance_class_increments_per_hop() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 8);
        let src = hx.router_at(&Coord::new(&[1, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2, 0]));
        let net_port = hx.port_towards(src, 2, 1); // arrived via some dim-2 channel
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, net_port, map.first_vc(2), &view),
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|c| c.class == 3), "VC_out = VC_in + 1");
    }

    #[test]
    fn deroutes_forbidden_when_classes_run_out() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        // N + M = 3 + 1: one deroute total.
        let algo = OmniWar::new(hx.clone(), 8, 1);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 4);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 3]));
        // At the source: 3 remaining minimal hops, 4 classes -> the single
        // deroute is still affordable.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        assert!(out.iter().any(|c| c.hops as usize == 4), "deroute offered");
        // After one (derouted) hop the packet sits on class 0 (the class
        // that hop used); the next hop is class 1, leaving 2 classes for 3
        // remaining minimal hops -> minimal only.
        let src2 = hx.router_at(&Coord::new(&[3, 0, 0]));
        let in_port = hx.port_towards(src2, 0, 0);
        let mut out2 = Vec::new();
        algo.route(
            &make_ctx(&hx, src2, dst, false, in_port, map.first_vc(0), &view),
            &mut rng,
            &mut out2,
        );
        assert_eq!(out2.len(), 3, "one minimal candidate per unaligned dim");
        assert!(
            out2.iter().all(|c| c.hops as usize == 3),
            "no deroutes left"
        );
    }

    #[test]
    fn backtoback_same_dim_deroute_restricted() {
        let hx = Arc::new(HyperX::uniform(2, 5, 2));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 8);
        // Packet at (2,0) heading to (4,4); arrived via a dim-0 channel and
        // dim 0 is still unaligned => last hop was a dim-0 deroute.
        let src = hx.router_at(&Coord::new(&[2, 0]));
        let dst = hx.router_at(&Coord::new(&[4, 4]));
        let in_port = hx.port_towards(src, 0, 0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, in_port, map.first_vc(0), &view),
            &mut rng,
            &mut out,
        );
        for c in &out {
            let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
            if d == 0 {
                assert_eq!(to, 4, "only the minimal hop allowed in dim 0");
            }
        }
        // Dim 1 deroutes are still offered.
        assert!(out.iter().any(|c| {
            let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
            d == 1 && to != 4
        }));
    }

    #[test]
    fn unrestricted_variant_allows_backtoback() {
        let hx = Arc::new(HyperX::uniform(2, 5, 2));
        let algo = OmniWar::with_options(hx.clone(), 8, 6, false);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 8);
        let src = hx.router_at(&Coord::new(&[2, 0]));
        let dst = hx.router_at(&Coord::new(&[4, 4]));
        let in_port = hx.port_towards(src, 0, 0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, in_port, map.first_vc(0), &view),
            &mut rng,
            &mut out,
        );
        assert!(out.iter().any(|c| {
            let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
            d == 0 && to != 4
        }));
    }

    #[test]
    fn dead_ports_filtered_from_candidates() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2]));
        let dead = hx.port_towards(src, 0, 2); // dim-0 minimal
        view.kill_port(dead);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        assert!(out.iter().all(|c| c.port as usize != dead));
        // Dim-1 minimal plus deroutes in both dims still offered.
        assert!(out
            .iter()
            .any(|c| c.port as usize == hx.port_towards(src, 1, 2)));
        assert!(out.iter().any(|c| c.hops as usize == 3), "deroutes remain");
    }

    /// The back-to-back same-dimension deroute restriction is waived when
    /// the dimension's minimal port is dead, so a one-dimension-left
    /// packet can still escape.
    #[test]
    fn backtoback_restriction_waived_on_dead_minimal() {
        let hx = Arc::new(HyperX::uniform(2, 5, 2));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 8);
        // Arrived via dim 0 with dim 0 still unaligned (= just derouted
        // there), and dim 0 is the only unaligned dimension.
        let src = hx.router_at(&Coord::new(&[2, 4]));
        let dst = hx.router_at(&Coord::new(&[4, 4]));
        let in_port = hx.port_towards(src, 0, 0);
        view.kill_port(hx.port_towards(src, 0, 4));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, in_port, map.first_vc(1), &view),
            &mut rng,
            &mut out,
        );
        assert!(!out.is_empty(), "escape deroutes must be offered");
        assert!(out.iter().all(|c| {
            let (d, to) = hx.port_dim_target(src, c.port as usize).unwrap();
            d == 0 && to != 4
        }));
    }

    /// Walk the algorithm greedily preferring deroutes: the path must
    /// terminate within N + M hops (the distance-class budget).
    #[test]
    fn path_always_terminates_within_class_budget() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let algo = OmniWar::max_deroutes(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        for (src, dst) in [(0usize, 63usize), (5, 58), (21, 42)] {
            let mut cur = src;
            let mut hops = 0usize;
            let mut in_port = 0usize;
            let mut vc = 0usize;
            let mut first = true;
            while cur != dst {
                let mut out = Vec::new();
                algo.route(
                    &make_ctx(&hx, cur, dst, first, in_port, vc, &view),
                    &mut rng,
                    &mut out,
                );
                // Adversarial choice: longest hops first (take deroutes).
                let cand = out.iter().max_by_key(|c| c.hops).copied().unwrap();
                let (d, to) = hx.port_dim_target(cur, cand.port as usize).unwrap();
                let next = hx.router_at(&hx.coord_of(cur).with(d, to));
                // Input port on the next router is the reverse channel.
                in_port = hx.port_towards(next, d, hx.coord_of(cur).get(d));
                cur = next;
                vc = map.first_vc(cand.class as usize);
                first = false;
                hops += 1;
                assert!(hops <= 8, "exceeded the N+M distance-class budget");
            }
        }
    }
}
