//! Helpers shared by the HyperX routing algorithms.

use std::sync::Arc;

use hxtopo::HyperX;

use crate::api::{Candidate, ClassMap, Commit, RouterView};
use crate::weight::{candidate_congestion, weight};

/// Topology + class-map bundle every HyperX algorithm carries.
#[derive(Clone)]
pub(crate) struct HxBase {
    pub hx: Arc<HyperX>,
    pub map: ClassMap,
}

impl HxBase {
    pub fn new(hx: Arc<HyperX>, num_vcs: usize, num_classes: usize) -> Self {
        HxBase {
            hx,
            map: ClassMap::new(num_vcs, num_classes),
        }
    }

    /// The dimension-order-routing next hop from `router` toward `target`:
    /// the port aligning the lowest-indexed unaligned dimension.
    /// Returns `None` when already at the target.
    pub fn dor_port(&self, router: usize, target: usize) -> Option<usize> {
        let cur = self.hx.coord_of(router);
        let dst = self.hx.coord_of(target);
        let d = cur.first_unaligned(&dst)?;
        Some(self.hx.port_towards(router, d, dst.get(d)))
    }

    /// Builds a weighted candidate for `(port, class)` with `hops` total
    /// remaining hops (including this one).
    #[inline]
    pub fn candidate(
        &self,
        view: &dyn RouterView,
        port: usize,
        class: usize,
        hops: usize,
        commit: Commit,
    ) -> Candidate {
        let q = candidate_congestion(view, port, &self.map, class);
        Candidate {
            port: port as u32,
            class: class as u8,
            weight: weight(q, hops),
            hops: hops as u8,
            commit,
        }
    }

    /// Minimal router-hop distance between two routers.
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.hx.coord_of(a).unaligned_count(&self.hx.coord_of(b))
    }
}
