//! Dimensionally-ordered Weighted Adaptive Routing (DimWAR) — paper
//! Section 5.1. The light-weight incremental adaptive algorithm.
//!
//! DimWAR moves through the network in dimension order, making a weighted
//! adaptive decision at *every* hop: within the current (lowest unaligned)
//! dimension it may either take the minimal hop straight to the
//! destination's coordinate, or deroute laterally to any other coordinate
//! of that dimension — at most once per dimension.
//!
//! Deadlock avoidance uses only **two resource classes** regardless of the
//! dimension count: minimal hops ride class 0, deroute hops ride class 1.
//! Within a dimension the only intra-dimension dependency is
//! `class 1 -> class 0` (a deroute is always followed by the forced minimal
//! hop), and dimension ordering makes cross-dimension dependencies acyclic,
//! so the class pair is safely reused in every dimension — the HyperX
//! analogue of dateline routing on a torus.
//!
//! Whether a deroute is allowed is read off the *input VC class* (class 0
//! or injection = may deroute; class 1 = just derouted, must route
//! minimally), so no state is carried in the packet — the paper's
//! practicality claim.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// The resource class minimal hops ride on.
pub const CLASS_MINIMAL: usize = 0;
/// The resource class deroute hops ride on.
pub const CLASS_DEROUTE: usize = 1;

/// Dimensionally-ordered weighted adaptive routing.
pub struct DimWar {
    base: HxBase,
}

impl DimWar {
    /// Creates DimWAR for `hx` with `num_vcs` VCs split into the two
    /// resource classes (spares relieve head-of-line blocking).
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        DimWar {
            base: HxBase::new(hx, num_vcs, 2),
        }
    }
}

impl RoutingAlgorithm for DimWar {
    fn name(&self) -> &'static str {
        "DimWAR"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let d = cur
            .first_unaligned(&dst)
            .expect("route() not called at destination");
        let h = cur.unaligned_count(&dst);

        // Minimal hop: straight to the destination's coordinate in the
        // current dimension, class 0.
        let min_port = hx.port_towards(ctx.router, d, dst.get(d));
        let min_live = ctx.view.port_live(min_port);
        if min_live {
            out.push(
                self.base
                    .candidate(ctx.view, min_port, CLASS_MINIMAL, h, Commit::None),
            );
        }

        // Deroutes are permitted only from the first resource class: a
        // packet arriving on class 1 just derouted and must route
        // minimally (paper Section 5.1 step 2). Exception under faults: a
        // minimally-forced packet whose minimal port is dead may take one
        // fault-escape deroute instead of stalling. This adds a
        // class-1 -> class-1 dependency only at routers adjacent to a
        // failure; with a single dead link per dimension row the next
        // minimal hop is live again, so no dependency cycle closes (under
        // heavier correlated failures the watchdog reports any stall).
        let may_deroute =
            ctx.from_terminal || self.base.map.class_of(ctx.input_vc) == CLASS_MINIMAL;
        if may_deroute || !min_live {
            for c in 0..hx.width(d) {
                if c == cur.get(d) || c == dst.get(d) {
                    continue;
                }
                let port = hx.port_towards(ctx.router, d, c);
                if !ctx.view.port_live(port) {
                    continue;
                }
                out.push(
                    self.base
                        .candidate(ctx.view, port, CLASS_DEROUTE, h + 1, Commit::None),
                );
            }
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "DimWAR",
            dimension_ordered: true,
            style: RoutingStyle::Incremental,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClassMap, PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn make_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        from_terminal: bool,
        input_vc: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: if from_terminal {
                0
            } else {
                hx.terms_per_router()
            },
            input_vc,
            from_terminal,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    #[test]
    fn offers_minimal_plus_all_deroutes() {
        let hx = Arc::new(HyperX::uniform(3, 8, 8));
        let algo = DimWar::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[5, 3, 0]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&make_ctx(&hx, src, dst, true, 0, &view), &mut rng, &mut out);
        // 1 minimal + 6 deroutes (width 8, excluding own and dest coords).
        assert_eq!(out.len(), 7);
        assert_eq!(
            out.iter()
                .filter(|c| c.class as usize == CLASS_MINIMAL)
                .count(),
            1
        );
        assert_eq!(
            out.iter()
                .filter(|c| c.class as usize == CLASS_DEROUTE)
                .count(),
            6
        );
        // All candidates stay in dimension 0 (dimension-ordered).
        for c in &out {
            let (d, _) = hx.port_dim_target(src, c.port as usize).unwrap();
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn no_deroute_after_deroute() {
        let hx = Arc::new(HyperX::uniform(3, 8, 8));
        let algo = DimWar::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[1, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[5, 3, 0]));
        let map = ClassMap::new(8, 2);
        // Arriving on a deroute-class VC: minimal only.
        let vc1 = map.first_vc(CLASS_DEROUTE);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, vc1, &view),
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class as usize, CLASS_MINIMAL);
        let (d, to) = hx.port_dim_target(src, out[0].port as usize).unwrap();
        assert_eq!((d, to), (0, 5));
    }

    #[test]
    fn deroute_weight_carries_extra_hop() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = DimWar::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 2]));
        // Equal congestion on all dimension-0 ports.
        for c in [1, 2, 3] {
            view.congest_port(hx.port_towards(src, 0, c), 10);
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&make_ctx(&hx, src, dst, true, 0, &view), &mut rng, &mut out);
        let min = out
            .iter()
            .find(|c| c.class as usize == CLASS_MINIMAL)
            .unwrap();
        let der = out
            .iter()
            .find(|c| c.class as usize == CLASS_DEROUTE)
            .unwrap();
        let q = 10 * 8 + crate::weight::HOP_LATENCY; // 10 flits on 8 VCs + hop term
        assert_eq!(min.weight, q * 2);
        assert_eq!(der.weight, q * 3, "deroute pays for the extra hop");
    }

    #[test]
    fn deroutes_around_congestion() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = DimWar::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 0]));
        let min_port = hx.port_towards(src, 0, 2);
        view.congest_port(min_port, 60);
        view.queues[min_port] = 40;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&make_ctx(&hx, src, dst, true, 0, &view), &mut rng, &mut out);
        let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
        assert_eq!(best.class as usize, CLASS_DEROUTE);
        assert_ne!(best.port as usize, min_port);
    }

    #[test]
    fn dead_ports_filtered_from_candidates() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = DimWar::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 0]));
        let min_port = hx.port_towards(src, 0, 2);
        let dead_deroute = hx.port_towards(src, 0, 1);
        view.kill_port(min_port);
        view.kill_port(dead_deroute);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&make_ctx(&hx, src, dst, true, 0, &view), &mut rng, &mut out);
        // Only the one live deroute (to coordinate 3) remains.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class as usize, CLASS_DEROUTE);
        assert_eq!(out[0].port as usize, hx.port_towards(src, 0, 3));
    }

    /// A minimally-forced (class 1) packet whose minimal port is dead gets
    /// the fault-escape deroutes instead of stalling.
    #[test]
    fn dead_minimal_port_enables_escape_deroute() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = DimWar::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 0]));
        view.kill_port(hx.port_towards(src, 0, 2));
        let map = ClassMap::new(8, 2);
        let vc1 = map.first_vc(CLASS_DEROUTE);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, vc1, &view),
            &mut rng,
            &mut out,
        );
        assert!(!out.is_empty(), "escape deroute must be offered");
        assert!(out.iter().all(|c| c.class as usize == CLASS_DEROUTE));
        assert!(out
            .iter()
            .all(|c| c.port as usize != hx.port_towards(src, 0, 2)));
    }

    /// Simulated walk: at most one deroute per dimension, dimensions in
    /// order, path length <= 2 * dims.
    #[test]
    fn path_property_one_deroute_per_dim() {
        let hx = Arc::new(HyperX::uniform(3, 5, 1));
        let algo = DimWar::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 2);
        let mut rng = SmallRng::seed_from_u64(42);
        for (src, dst) in [(0usize, 124usize), (7, 93), (31, 32)] {
            let mut cur = src;
            let mut vc = 0usize;
            let mut first = true;
            let mut hops = 0;
            let mut last_dim = 0;
            while cur != dst {
                let mut out = Vec::new();
                algo.route(
                    &make_ctx(&hx, cur, dst, first, vc, &view),
                    &mut rng,
                    &mut out,
                );
                // Pick the worst case for the property: always prefer a
                // deroute when offered.
                let cand = out.iter().max_by_key(|c| c.class).copied().unwrap();
                let (d, to) = hx.port_dim_target(cur, cand.port as usize).unwrap();
                assert!(d >= last_dim, "dimension order violated");
                last_dim = d;
                cur = hx.router_at(&hx.coord_of(cur).with(d, to));
                vc = map.first_vc(cand.class as usize);
                first = false;
                hops += 1;
                assert!(hops <= 2 * hx.dims(), "path exceeded one deroute per dim");
            }
        }
    }
}
