//! Routing algorithms for the Dragonfly baseline topology (Figure 4's
//! head-to-head comparison).
//!
//! Three classic policies: deterministic minimal (local-global-local),
//! Valiant through a random intermediate router, and source-adaptive UGAL
//! choosing between them. All use distance classes — the hop index is the
//! VC class — which is acyclic by construction; minimal paths need 3
//! classes and Valiant paths 6, comfortably inside the 8 VCs the paper's
//! methodology grants every algorithm.

use std::sync::Arc;

use hxtopo::{Dragonfly, Topology};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::api::{Candidate, ClassMap, Commit, RouteCtx, RoutingAlgorithm, NO_INTERMEDIATE};
use crate::meta::{AlgoMeta, RoutingStyle};
use crate::weight::{candidate_congestion, weight};

/// Distance classes needed by a two-phase (Valiant) Dragonfly path.
const DF_CLASSES: usize = 6;

/// Which policy a [`DragonflyRouting`] instance applies at the source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DfPolicy {
    /// Always minimal.
    Min,
    /// Always Valiant.
    Val,
    /// UGAL: weigh minimal against one random Valiant candidate.
    Ugal,
}

/// Dragonfly routing with distance-class deadlock avoidance.
pub struct DragonflyRouting {
    df: Arc<Dragonfly>,
    map: ClassMap,
    policy: DfPolicy,
}

impl DragonflyRouting {
    /// Creates a Dragonfly router for `df` with `num_vcs` VCs.
    ///
    /// # Panics
    /// Panics if `num_vcs < 6` (the Valiant distance-class requirement).
    pub fn new(df: Arc<Dragonfly>, num_vcs: usize, policy: DfPolicy) -> Self {
        DragonflyRouting {
            df,
            map: ClassMap::new(num_vcs, DF_CLASSES),
            policy,
        }
    }

    /// The minimal next-hop port from `router` toward `target`
    /// (local-global-local). `None` when already there.
    pub fn min_port(&self, router: usize, target: usize) -> Option<usize> {
        if router == target {
            return None;
        }
        let df = &self.df;
        let (g_cur, g_tgt) = (df.group_of(router), df.group_of(target));
        if g_cur == g_tgt {
            return Some(df.local_port_towards(router, df.index_in_group(target)));
        }
        let (gw_router, gw_port) = df
            .global_attach(g_cur, g_tgt)
            .expect("dragonfly groups fully connected");
        if gw_router == router {
            Some(gw_port)
        } else {
            Some(df.local_port_towards(router, df.index_in_group(gw_router)))
        }
    }

    fn push(
        &self,
        ctx: &RouteCtx<'_>,
        port: usize,
        class: usize,
        hops: usize,
        commit: Commit,
        out: &mut Vec<Candidate>,
    ) {
        let q = candidate_congestion(ctx.view, port, &self.map, class);
        out.push(Candidate {
            port: port as u32,
            class: class as u8,
            weight: weight(q, hops),
            hops: hops as u8,
            commit,
        });
    }
}

impl RoutingAlgorithm for DragonflyRouting {
    fn name(&self) -> &'static str {
        match self.policy {
            DfPolicy::Min => "DF-MIN",
            DfPolicy::Val => "DF-VAL",
            DfPolicy::Ugal => "DF-UGAL",
        }
    }

    fn num_classes(&self) -> usize {
        DF_CLASSES
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let df = &self.df;
        let out_class = if ctx.from_terminal {
            0
        } else {
            self.map.class_of(ctx.input_vc) + 1
        };
        debug_assert!(out_class < DF_CLASSES, "dragonfly path exceeded 6 hops");

        if ctx.from_terminal && ctx.state.intermediate == NO_INTERMEDIATE {
            let h_min = df.min_router_hops(ctx.router, ctx.dst_router);
            let min_port = self
                .min_port(ctx.router, ctx.dst_router)
                .expect("not at dst");
            let min_commit = Commit::SetValiant {
                intermediate: ctx.router as u32,
                phase: 1,
            };
            let want_min = matches!(self.policy, DfPolicy::Min | DfPolicy::Ugal);
            if want_min {
                self.push(ctx, min_port, out_class, h_min, min_commit, out);
            }
            if matches!(self.policy, DfPolicy::Val | DfPolicy::Ugal) {
                let x = rng.random_range(0..df.num_routers() as u32) as usize;
                if x != ctx.router && x != ctx.dst_router {
                    let port = self.min_port(ctx.router, x).expect("x != router");
                    let hops =
                        df.min_router_hops(ctx.router, x) + df.min_router_hops(x, ctx.dst_router);
                    self.push(
                        ctx,
                        port,
                        out_class,
                        hops,
                        Commit::SetValiant {
                            intermediate: x as u32,
                            phase: 0,
                        },
                        out,
                    );
                } else if !want_min {
                    // Degenerate Valiant draw for the pure-VAL policy:
                    // fall back to the minimal path this cycle.
                    self.push(ctx, min_port, out_class, h_min, min_commit, out);
                }
            }
            return;
        }

        // Committed packet: minimal toward the current phase target.
        let (target, phase) = if ctx.state.phase == 0 {
            let x = ctx.state.intermediate as usize;
            if x == ctx.router {
                (ctx.dst_router, 1u8)
            } else {
                (x, 0)
            }
        } else {
            (ctx.dst_router, 1)
        };
        let port = self
            .min_port(ctx.router, target)
            .expect("phase target differs");
        let hops = df.min_router_hops(ctx.router, target)
            + if phase == 0 {
                df.min_router_hops(target, ctx.dst_router)
            } else {
                0
            };
        let commit = if phase != ctx.state.phase {
            Commit::SetPhase(1)
        } else {
            Commit::None
        };
        self.push(ctx, port, out_class, hops, commit, out);
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "DF-UGAL",
            dimension_ordered: false,
            style: match self.policy {
                DfPolicy::Ugal => RoutingStyle::Source,
                _ => RoutingStyle::Oblivious,
            },
            vcs_required: "6",
            deadlock: "D.C.",
            arch_requirements: "none",
            packet_contents: "int. addr.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PacketRouteState;
    use crate::mock::MockView;
    use rand::SeedableRng;

    fn ctx<'a>(
        df: &Dragonfly,
        router: usize,
        dst_router: usize,
        from_terminal: bool,
        input_vc: usize,
        view: &'a MockView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: if from_terminal {
                0
            } else {
                df.terms_per_router()
            },
            input_vc,
            from_terminal,
            dst_router,
            dst_terminal: dst_router * df.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    /// Follow the minimal next-hop function until arrival; it must match
    /// the topology's min_router_hops.
    #[test]
    fn min_route_matches_min_hops() {
        let df = Arc::new(Dragonfly::maximal(2, 4, 2));
        let r = DragonflyRouting::new(df.clone(), 8, DfPolicy::Min);
        for a in 0..df.num_routers() {
            for b in 0..df.num_routers() {
                let mut cur = a;
                let mut hops = 0;
                while cur != b {
                    let p = r.min_port(cur, b).unwrap();
                    match df.port_target(cur, p) {
                        hxtopo::PortTarget::Router { router, .. } => cur = router,
                        other => panic!("min port led to {other:?}"),
                    }
                    hops += 1;
                    assert!(hops <= 3, "dragonfly minimal path exceeded diameter");
                }
                assert_eq!(hops, df.min_router_hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn ugal_offers_min_and_val() {
        let df = Arc::new(Dragonfly::maximal(2, 4, 2));
        let algo = DragonflyRouting::new(df.clone(), 8, DfPolicy::Ugal);
        let view = MockView::idle(df.max_ports(), 8, 64);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen_val = false;
        for _ in 0..50 {
            let mut out = Vec::new();
            algo.route(&ctx(&df, 0, 20, true, 0, &view), &mut rng, &mut out);
            assert!(!out.is_empty());
            // Minimal candidate present with least hops.
            let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
            assert!(matches!(best.commit, Commit::SetValiant { phase: 1, .. }));
            if out.len() == 2 {
                seen_val = true;
            }
        }
        assert!(seen_val, "valiant candidate never drawn");
    }

    #[test]
    fn distance_class_increments() {
        let df = Arc::new(Dragonfly::maximal(2, 4, 2));
        let algo = DragonflyRouting::new(df.clone(), 8, DfPolicy::Min);
        let map = ClassMap::new(8, 6);
        let view = MockView::idle(df.max_ports(), 8, 64);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut c = ctx(&df, 5, 20, false, map.first_vc(1), &view);
        c.state.phase = 1;
        let mut out = Vec::new();
        algo.route(&c, &mut rng, &mut out);
        assert!(out.iter().all(|cand| cand.class == 2));
    }
}
