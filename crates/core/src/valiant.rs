//! Valiant's randomized routing (VAL, Table 2 row 2).
//!
//! Every packet is routed minimally (DOR) to a uniformly random
//! intermediate router, then minimally to its destination. This perfectly
//! load-balances any admissible traffic pattern at the cost of doubling
//! bandwidth consumption and latency. Two resource classes — one per DOR
//! phase — give deadlock freedom; the intermediate address rides in the
//! packet (the header field Table 1 charges VAL-family algorithms with).

use std::sync::Arc;

use hxtopo::{HyperX, Topology};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm, NO_INTERMEDIATE};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// Valiant's randomized two-phase routing.
pub struct Valiant {
    base: HxBase,
}

impl Valiant {
    /// Creates VAL for `hx` with `num_vcs` virtual channels split into the
    /// two phase classes.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        Valiant {
            base: HxBase::new(hx, num_vcs, 2),
        }
    }
}

/// Emits the single mid-path Valiant candidate: DOR toward the intermediate
/// in phase 0 (switching to phase 1 upon arrival), DOR toward the
/// destination in phase 1. Shared with UGAL and Clos-AD, whose packets
/// behave identically once the source decision is made.
pub(crate) fn valiant_continue(base: &HxBase, ctx: &RouteCtx<'_>, out: &mut Vec<Candidate>) {
    let (target, phase) = if ctx.state.phase == 0 {
        let x = ctx.state.intermediate as usize;
        debug_assert_ne!(ctx.state.intermediate, NO_INTERMEDIATE);
        if x == ctx.router {
            (ctx.dst_router, 1)
        } else {
            (x, 0)
        }
    } else {
        (ctx.dst_router, 1)
    };
    let port = base
        .dor_port(ctx.router, target)
        .expect("phase target differs from current router");
    // The two-phase DOR path is committed; with its next hop down the
    // packet waits for a revival (the watchdog reports permanent stalls).
    if !ctx.view.port_live(port) {
        return;
    }
    let hops = base.hops(ctx.router, target)
        + if phase == 0 {
            base.hops(target, ctx.dst_router)
        } else {
            0
        };
    let commit = if phase != ctx.state.phase as usize {
        Commit::SetPhase(1)
    } else {
        Commit::None
    };
    out.push(base.candidate(ctx.view, port, phase, hops, commit));
}

impl RoutingAlgorithm for Valiant {
    fn name(&self) -> &'static str {
        "VAL"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        if ctx.from_terminal && ctx.state.intermediate == NO_INTERMEDIATE {
            // Source router: draw a fresh intermediate (re-drawn every cycle
            // the head waits; only the granted candidate commits).
            let x = rng.random_range(0..self.base.hx.num_routers() as u32);
            if x as usize == ctx.router {
                // Degenerate intermediate: the whole path is phase 1.
                let port = self
                    .base
                    .dor_port(ctx.router, ctx.dst_router)
                    .expect("route() not called at destination");
                if !ctx.view.port_live(port) {
                    // Dead first hop: emit nothing and redraw next cycle.
                    return;
                }
                let hops = self.base.hops(ctx.router, ctx.dst_router);
                out.push(self.base.candidate(
                    ctx.view,
                    port,
                    1,
                    hops,
                    Commit::SetValiant {
                        intermediate: x,
                        phase: 1,
                    },
                ));
            } else {
                let port = self
                    .base
                    .dor_port(ctx.router, x as usize)
                    .expect("x differs from current router");
                if !ctx.view.port_live(port) {
                    // Dead first hop: emit nothing and redraw next cycle.
                    return;
                }
                let hops = self.base.hops(ctx.router, x as usize)
                    + self.base.hops(x as usize, ctx.dst_router);
                out.push(self.base.candidate(
                    ctx.view,
                    port,
                    0,
                    hops,
                    Commit::SetValiant {
                        intermediate: x,
                        phase: 0,
                    },
                ));
            }
            return;
        }
        valiant_continue(&self.base, ctx, out);
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "VAL",
            dimension_ordered: true,
            style: RoutingStyle::Oblivious,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "none",
            packet_contents: "int. addr.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::Topology;
    use rand::SeedableRng;

    fn source_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: 0,
            input_vc: 0,
            from_terminal: true,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    #[test]
    fn source_commits_an_intermediate() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let val = Valiant::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = Vec::new();
        val.route(&source_ctx(&hx, 0, 15, &view), &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        match out[0].commit {
            Commit::SetValiant { intermediate, .. } => {
                assert!((intermediate as usize) < hx.num_routers());
            }
            other => panic!("expected SetValiant, got {other:?}"),
        }
    }

    #[test]
    fn phase0_routes_toward_intermediate() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let val = Valiant::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(7);
        let x = 10usize;
        let mut ctx = source_ctx(&hx, 0, 15, &view);
        ctx.from_terminal = false;
        ctx.state = PacketRouteState {
            intermediate: x as u32,
            phase: 0,
            deroute_mask: 0,
        };
        let mut out = Vec::new();
        val.route(&ctx, &mut rng, &mut out);
        let base = HxBase::new(hx.clone(), 8, 2);
        assert_eq!(out[0].port as usize, base.dor_port(0, x).unwrap());
        assert_eq!(out[0].class, 0);
    }

    #[test]
    fn switches_to_phase1_at_intermediate() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let val = Valiant::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(7);
        let x = 10usize;
        let mut ctx = source_ctx(&hx, x, 15, &view);
        ctx.from_terminal = false;
        ctx.state = PacketRouteState {
            intermediate: x as u32,
            phase: 0,
            deroute_mask: 0,
        };
        let mut out = Vec::new();
        val.route(&ctx, &mut rng, &mut out);
        assert_eq!(out[0].class, 1, "phase 1 uses the second resource class");
        assert_eq!(out[0].commit, Commit::SetPhase(1));
        let base = HxBase::new(hx.clone(), 8, 2);
        assert_eq!(out[0].port as usize, base.dor_port(x, 15).unwrap());
    }

    #[test]
    fn intermediates_are_spread_out() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let val = Valiant::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut out = Vec::new();
            val.route(&source_ctx(&hx, 0, 15, &view), &mut rng, &mut out);
            if let Commit::SetValiant { intermediate, .. } = out[0].commit {
                seen.insert(intermediate);
            }
        }
        assert!(
            seen.len() > hx.num_routers() / 2,
            "only {} distinct intermediates",
            seen.len()
        );
    }
}
