//! Adaptive up / deterministic down routing for the folded-Clos fat tree
//! (Figure 4's second baseline).
//!
//! Going up, every up-port reaches a valid least-common-ancestor, so the
//! algorithm picks the least congested one (this is the fat tree's whole
//! adaptivity). Coming down, the path to a terminal is unique. Up\*/down\*
//! routing is inherently deadlock-free, so a single resource class spans
//! all VCs.

use std::sync::Arc;

use hxtopo::FatTree;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::meta::{AlgoMeta, RoutingStyle};
use crate::weight::{port_congestion, weight};

/// Adaptive-up/deterministic-down fat-tree routing.
pub struct FatTreeRouting {
    ft: Arc<FatTree>,
}

impl FatTreeRouting {
    /// Creates fat-tree routing with `num_vcs` VCs (one class).
    pub fn new(ft: Arc<FatTree>, _num_vcs: usize) -> Self {
        FatTreeRouting { ft }
    }

    fn push(&self, ctx: &RouteCtx<'_>, port: usize, hops: usize, out: &mut Vec<Candidate>) {
        let q = port_congestion(ctx.view, port);
        out.push(Candidate {
            port: port as u32,
            class: 0,
            weight: weight(q, hops),
            hops: hops as u8,
            commit: Commit::None,
        });
    }
}

impl RoutingAlgorithm for FatTreeRouting {
    fn name(&self) -> &'static str {
        "FT-ADAPTIVE"
    }

    fn num_classes(&self) -> usize {
        1
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let ft = &self.ft;
        let h = ft.radix() / 2;
        let (dst_edge, dst_down_port) = ft.terminal_edge(ctx.dst_terminal);
        let dst_pod = ft.pod_of(dst_edge);
        match ft.level(ctx.router) {
            0 => {
                debug_assert_ne!(ctx.router, dst_edge, "ejection handled by the router");
                // Remaining hops: up to agg, then 1 (same pod) or 3 (via core).
                let hops = if ft.pod_of(ctx.router) == dst_pod {
                    2
                } else {
                    4
                };
                for p in h..2 * h {
                    self.push(ctx, p, hops, out);
                }
                let _ = dst_down_port;
            }
            1 => {
                if ft.pod_of(ctx.router) == dst_pod {
                    // Deterministic down to the destination edge.
                    let i = dst_edge % h;
                    self.push(ctx, i, 1, out);
                } else {
                    for p in h..2 * h {
                        self.push(ctx, p, 3, out);
                    }
                }
            }
            _ => {
                // Core: deterministic down into the destination pod.
                self.push(ctx, dst_pod, 2, out);
            }
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "FT-ADAPTIVE",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "1",
            deadlock: "up*/down*",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PacketRouteState;
    use crate::mock::MockView;
    use hxtopo::{PortTarget, Topology};
    use rand::SeedableRng;

    fn ctx<'a>(
        ft: &FatTree,
        router: usize,
        dst_terminal: usize,
        view: &'a MockView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: 0,
            input_vc: 0,
            from_terminal: ft.level(router) == 0,
            dst_router: ft.terminal_edge(dst_terminal).0,
            dst_terminal,
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    /// Every greedy walk (always pick first candidate) must reach the
    /// destination edge within 4 hops.
    #[test]
    fn all_walks_terminate() {
        let ft = Arc::new(FatTree::new(4));
        let algo = FatTreeRouting::new(ft.clone(), 8);
        let view = MockView::idle(ft.max_ports(), 8, 64);
        let mut rng = SmallRng::seed_from_u64(0);
        for src_t in 0..ft.num_terminals() {
            for dst_t in 0..ft.num_terminals() {
                let (src_e, _) = ft.terminal_edge(src_t);
                let (dst_e, _) = ft.terminal_edge(dst_t);
                if src_e == dst_e {
                    continue;
                }
                let mut cur = src_e;
                let mut hops = 0;
                while cur != dst_e {
                    let mut out = Vec::new();
                    algo.route(&ctx(&ft, cur, dst_t, &view), &mut rng, &mut out);
                    assert!(!out.is_empty());
                    match ft.port_target(cur, out[0].port as usize) {
                        PortTarget::Router { router, .. } => cur = router,
                        other => panic!("routing led to {other:?}"),
                    }
                    hops += 1;
                    assert!(hops <= 4, "fat-tree path exceeded diameter");
                }
                assert_eq!(hops, ft.min_router_hops(src_e, dst_e));
            }
        }
    }

    #[test]
    fn up_ports_all_offered_at_edge() {
        let ft = Arc::new(FatTree::new(8));
        let algo = FatTreeRouting::new(ft.clone(), 8);
        let view = MockView::idle(ft.max_ports(), 8, 64);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        // terminal far away (other pod)
        let dst_t = ft.num_terminals() - 1;
        algo.route(&ctx(&ft, 0, dst_t, &view), &mut rng, &mut out);
        assert_eq!(out.len(), 4, "k/2 up candidates");
    }

    #[test]
    fn adaptive_up_avoids_congested_port() {
        let ft = Arc::new(FatTree::new(4));
        let algo = FatTreeRouting::new(ft.clone(), 8);
        let mut view = MockView::idle(ft.max_ports(), 8, 64);
        view.congest_port(2, 30); // first up port congested
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        let dst_t = ft.num_terminals() - 1;
        algo.route(&ctx(&ft, 0, dst_t, &view), &mut rng, &mut out);
        let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
        assert_eq!(best.port, 3, "congested up-port chosen");
    }
}
