//! Fault-Tolerant Weighted Adaptive Routing (FT-WAR) — the fault-tolerant
//! HyperX baseline, following the approach of Camarero, Cano, Martínez and
//! Beivide, *"Achieving High-Performance Fault-Tolerant Routing in HyperX
//! Interconnection Networks"* (arXiv 2404.04315).
//!
//! Fault-free, FT-WAR routes exactly like OmniWAR: any unaligned dimension
//! at any time, minimal or derouted, under distance-class deadlock
//! avoidance (`VC_out = VC_in + 1`, N + M classes). The fault extension is
//! *lazy*: routing only deviates at routers that are locally blocked, so
//! the fault-free fast path pays nothing — the practicality argument of
//! the source paper carried over to fault handling.
//!
//! When every port that makes progress is dead — the minimal port *and*
//! all lateral coordinates of every unaligned dimension — the packet would
//! stall under OmniWAR. FT-WAR instead **escapes through an aligned
//! dimension**: it deroutes to any live coordinate of a dimension it has
//! already aligned, reaching a router whose view of the faulty dimensions
//! is different. The escape un-aligns a dimension, so it costs two extra
//! hops (one to leave, one to come back) and is affordable only while
//! `classes_left >= remaining + 1`. Because escapes ride the same
//! strictly-incrementing distance classes as every other hop, the channel
//! dependency graph stays acyclic — fault tolerance costs no extra VCs,
//! only deroute budget.
//!
//! Like DimWAR and OmniWAR, no routing state lives in the packet: the hop
//! index *is* the input VC class, and blockage is re-evaluated from the
//! purely local live-port view at every hop.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};

/// Fault-tolerant omni-dimensional weighted adaptive routing.
pub struct FtWar {
    base: HxBase,
    /// Total distance classes (N + M).
    classes: usize,
}

impl FtWar {
    /// Creates FT-WAR with `num_vcs` VCs and `deroutes` allowed deroutes
    /// (`M`); the class count is `dims + deroutes` and must fit in
    /// `num_vcs`. Escapes through aligned dimensions draw from the same
    /// deroute budget (an escape consumes two of it).
    ///
    /// # Panics
    /// Panics if `dims + deroutes > num_vcs`.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize, deroutes: usize) -> Self {
        let classes = hx.dims() + deroutes;
        assert!(
            classes <= num_vcs,
            "N+M = {classes} distance classes cannot fit in {num_vcs} VCs"
        );
        FtWar {
            base: HxBase::new(hx, num_vcs, classes),
            classes,
        }
    }

    /// Creates FT-WAR using every VC as a distance class, i.e.
    /// `M = num_vcs - dims` deroutes — the deepest escape budget the VC
    /// set affords.
    pub fn max_deroutes(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        let dims = hx.dims();
        assert!(num_vcs >= dims, "need at least one VC per dimension");
        Self::new(hx, num_vcs, num_vcs - dims)
    }

    /// The number of deroutes this instance may take (`M`).
    pub fn deroutes(&self) -> usize {
        self.classes - self.base.hx.dims()
    }
}

impl RoutingAlgorithm for FtWar {
    fn name(&self) -> &'static str {
        "FT-WAR"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn route(&self, ctx: &RouteCtx<'_>, _rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let remaining = cur.unaligned_count(&dst);
        debug_assert!(remaining > 0, "route() not called at destination");

        // Distance class of the outgoing hop: 0 at the source router,
        // input class + 1 afterwards.
        let out_class = if ctx.from_terminal {
            0
        } else {
            self.base.map.class_of(ctx.input_vc) + 1
        };
        debug_assert!(
            out_class < self.classes,
            "distance classes exhausted: the deroute guard was violated"
        );
        // Classes still available after this hop.
        let classes_left = self.classes - 1 - out_class;
        // In-dimension deroutes keep `remaining` unchanged, so they need a
        // full `remaining` classes afterwards; minimal hops need
        // remaining - 1.
        let may_deroute = classes_left >= remaining;
        debug_assert!(
            classes_left >= remaining - 1,
            "cannot even finish minimally"
        );

        // Back-to-back restriction (as in OmniWAR): arriving on a network
        // channel of dimension d with d still unaligned implies the last
        // hop was a deroute in d; don't deroute there again unless the
        // minimal port is dead.
        let blocked_dim = if !ctx.from_terminal {
            hx.port_dim_target(ctx.router, ctx.input_port)
                .map(|(d, _)| d)
                .filter(|&d| !cur.aligned(&dst, d))
        } else {
            None
        };

        // Normal pass: exactly OmniWAR.
        for d in 0..hx.dims() {
            if cur.aligned(&dst, d) {
                continue;
            }
            let min_port = hx.port_towards(ctx.router, d, dst.get(d));
            let min_live = ctx.view.port_live(min_port);
            if min_live {
                out.push(self.base.candidate(
                    ctx.view,
                    min_port,
                    out_class,
                    remaining,
                    Commit::None,
                ));
            }
            if may_deroute && (blocked_dim != Some(d) || !min_live) {
                for c in 0..hx.width(d) {
                    if c == cur.get(d) || c == dst.get(d) {
                        continue;
                    }
                    let port = hx.port_towards(ctx.router, d, c);
                    if !ctx.view.port_live(port) {
                        continue;
                    }
                    out.push(self.base.candidate(
                        ctx.view,
                        port,
                        out_class,
                        remaining + 1,
                        Commit::None,
                    ));
                }
            }
        }

        // Fault escape: only when the normal pass came up empty (every
        // port making progress is dead) and the class budget can absorb
        // un-aligning a dimension (the escape needs one class more than
        // the remaining minimal hops). Any live lateral move in an
        // aligned dimension qualifies — the weights then steer among
        // escapes by congestion like any other candidate set.
        if out.is_empty() && classes_left > remaining {
            for d in 0..hx.dims() {
                if !cur.aligned(&dst, d) {
                    continue;
                }
                for c in 0..hx.width(d) {
                    if c == cur.get(d) {
                        continue;
                    }
                    let port = hx.port_towards(ctx.router, d, c);
                    if !ctx.view.port_live(port) {
                        continue;
                    }
                    out.push(self.base.candidate(
                        ctx.view,
                        port,
                        out_class,
                        remaining + 2,
                        Commit::None,
                    ));
                }
            }
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "FT-WAR",
            dimension_ordered: false,
            style: RoutingStyle::Incremental,
            vcs_required: "N+M",
            deadlock: "R.R. & D.C.",
            arch_requirements: "none",
            packet_contents: "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ClassMap, PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn make_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        from_terminal: bool,
        input_port: usize,
        input_vc: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port,
            input_vc,
            from_terminal,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    /// Kills every dimension-`d` port of `router`.
    fn kill_dim(hx: &HyperX, view: &mut MockView, router: usize, d: usize) {
        let cur = hx.coord_of(router);
        for c in 0..hx.width(d) {
            if c != cur.get(d) {
                view.kill_port(hx.port_towards(router, d, c));
            }
        }
    }

    /// Fault-free, FT-WAR offers the same candidate set shape as OmniWAR:
    /// per unaligned dimension one minimal hop plus all deroutes, class 0
    /// from the terminal, and no aligned-dimension escapes.
    #[test]
    fn fault_free_matches_omniwar_shape() {
        let hx = Arc::new(HyperX::uniform(3, 4, 2));
        let algo = FtWar::max_deroutes(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 0]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        // 2 unaligned dims x (1 minimal + 2 deroutes); dim 2 aligned and
        // untouched.
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|c| c.class == 0));
        for c in &out {
            let (d, _) = hx.port_dim_target(src, c.port as usize).unwrap();
            assert_ne!(d, 2, "no escape through the aligned dimension");
        }
    }

    /// With the last unaligned dimension completely severed at this
    /// router, FT-WAR escapes laterally through an aligned dimension —
    /// the candidates OmniWAR cannot offer.
    #[test]
    fn escapes_through_aligned_dimension_when_blocked() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = FtWar::max_deroutes(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 1]));
        let dst = hx.router_at(&Coord::new(&[3, 1]));
        // Sever all of dimension 0 at src: minimal and every deroute dead.
        kill_dim(&hx, &mut view, src, 0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        assert!(!out.is_empty(), "escape candidates must be offered");
        for c in &out {
            let (d, _) = hx.port_dim_target(src, c.port as usize).unwrap();
            assert_eq!(d, 1, "escapes go through the aligned dimension");
            // Un-aligning dim 1 costs two extra hops over minimal.
            assert_eq!(c.hops, 3);
        }
        // Width 4: three lateral coordinates to escape to.
        assert_eq!(out.len(), 3);
    }

    /// Escapes are a last resort: while any progress port lives, no
    /// aligned-dimension candidate appears.
    #[test]
    fn no_escape_while_progress_possible() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        let algo = FtWar::max_deroutes(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let src = hx.router_at(&Coord::new(&[0, 1]));
        let dst = hx.router_at(&Coord::new(&[3, 1]));
        // Kill the minimal port but leave one lateral dim-0 port alive.
        view.kill_port(hx.port_towards(src, 0, 3));
        view.kill_port(hx.port_towards(src, 0, 1));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 1, "only the surviving in-dimension deroute");
        let (d, to) = hx.port_dim_target(src, out[0].port as usize).unwrap();
        assert_eq!((d, to), (0, 2));
    }

    /// An escape is affordable only while the class budget can pay the
    /// two-hop detour: with exactly enough classes to finish minimally,
    /// a blocked router offers nothing (the packet waits for revival or
    /// the transport retransmits).
    #[test]
    fn escape_respects_class_budget() {
        let hx = Arc::new(HyperX::uniform(2, 4, 2));
        // N + M = 2 + 1 = 3 classes: one deroute total.
        let algo = FtWar::new(hx.clone(), 8, 1);
        let mut view = MockView::idle(hx.max_ports(), 8, 64);
        let map = ClassMap::new(8, 3);
        let src = hx.router_at(&Coord::new(&[0, 1]));
        let dst = hx.router_at(&Coord::new(&[3, 1]));
        kill_dim(&hx, &mut view, src, 0);
        // Arrived on class 0 via dim 1: next hop is class 1, leaving one
        // class for one remaining hop — minimal only, escape (needing
        // remaining + 1 = 2) unaffordable.
        let in_port = hx.port_towards(src, 1, 0);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, false, in_port, map.first_vc(0), &view),
            &mut rng,
            &mut out,
        );
        assert!(out.is_empty(), "escape must respect the class budget");
        // From the terminal (class 0, two classes left) the same blockage
        // is escapable.
        let mut out2 = Vec::new();
        algo.route(
            &make_ctx(&hx, src, dst, true, 0, 0, &view),
            &mut rng,
            &mut out2,
        );
        assert!(!out2.is_empty(), "budget allows the escape from class 0");
    }

    /// Walk the algorithm around a blocked router: the packet must reach
    /// the destination within the N + M class budget, using an escape
    /// where OmniWAR would stall. `MockView` is port-indexed (one
    /// router's perspective), so the walk swaps views by router: the
    /// source router sees its dimension-0 row severed, every other
    /// router is healthy — a single-router fault, not a severed column.
    #[test]
    fn walk_routes_around_blocked_router() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let algo = FtWar::max_deroutes(hx.clone(), 8);
        let map = ClassMap::new(8, 8);
        let src = hx.router_at(&Coord::new(&[0, 1]));
        let dst = hx.router_at(&Coord::new(&[3, 1]));
        let healthy = MockView::idle(hx.max_ports(), 8, 64);
        let mut blocked = healthy.clone();
        kill_dim(&hx, &mut blocked, src, 0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cur = src;
        let mut in_port = 0usize;
        let mut vc = 0usize;
        let mut first = true;
        let mut hops = 0usize;
        let mut escaped = false;
        while cur != dst {
            let view: &dyn RouterView = if cur == src { &blocked } else { &healthy };
            let mut out = Vec::new();
            algo.route(
                &make_ctx(&hx, cur, dst, first, in_port, vc, view),
                &mut rng,
                &mut out,
            );
            assert!(!out.is_empty(), "stalled at router {cur} after {hops} hops");
            // Deterministic greedy: cheapest (weight, hops, port).
            let cand = out
                .iter()
                .min_by_key(|c| (c.weight, c.hops, c.port))
                .copied()
                .unwrap();
            let (d, to) = hx.port_dim_target(cur, cand.port as usize).unwrap();
            if hx.coord_of(cur).aligned(&hx.coord_of(dst), d) {
                escaped = true;
            }
            let next = hx.router_at(&hx.coord_of(cur).with(d, to));
            in_port = hx.port_towards(next, d, hx.coord_of(cur).get(d));
            cur = next;
            vc = map.first_vc(cand.class as usize);
            first = false;
            hops += 1;
            assert!(hops <= 8, "exceeded the N+M distance-class budget");
        }
        assert!(escaped, "the walk had to use an aligned-dimension escape");
    }
}
