//! The routing-algorithm abstraction.
//!
//! A [`RoutingAlgorithm`] is consulted by a router whenever the head flit of
//! a packet sits unrouted at the front of an input virtual channel. It
//! receives a local [`RouterView`] (congestion of this router's output side
//! only — adaptive decisions use *local* information, exactly as in the
//! paper) and emits a set of [`Candidate`] output choices. The simulator
//! grants the cheapest *feasible* candidate under virtual cut-through flow
//! control, applying the candidate's [`Commit`] to the packet's routing
//! state when the grant happens.
//!
//! Resource classes, not concrete VCs, appear in candidates: the simulator
//! maps a class to its share of the physical VCs via [`ClassMap`]
//! (algorithms needing fewer classes than VCs spread each class over the
//! spare VCs for head-of-line-blocking relief, per the paper's evaluation
//! methodology, footnote 4).

use rand::rngs::SmallRng;

/// Sentinel meaning "no Valiant intermediate router".
pub const NO_INTERMEDIATE: u32 = u32::MAX;

/// Mutable per-packet routing state.
///
/// DimWAR and OmniWAR leave this untouched — their whole point is that all
/// routing state is encoded in the VC identifier. The baselines (UGAL,
/// Clos-AD, VAL) store the Valiant intermediate address here, which models
/// the extra packet-header field Table 1 of the paper charges them with.
/// DAL stores its per-dimension deroute bitmask (the "N-bit field").
#[derive(Clone, Copy, Debug)]
pub struct PacketRouteState {
    /// Valiant intermediate router id, or [`NO_INTERMEDIATE`].
    pub intermediate: u32,
    /// Valiant phase: 0 = heading to the intermediate, 1 = heading to the
    /// destination.
    pub phase: u8,
    /// DAL: bitmask of dimensions already derouted in.
    pub deroute_mask: u8,
}

impl Default for PacketRouteState {
    fn default() -> Self {
        PacketRouteState {
            intermediate: NO_INTERMEDIATE,
            phase: 0,
            deroute_mask: 0,
        }
    }
}

/// State update applied to a packet when a candidate wins allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Commit {
    /// No state change (DimWAR/OmniWAR always use this).
    None,
    /// Record a Valiant decision made at the source router.
    SetValiant { intermediate: u32, phase: u8 },
    /// Advance to Valiant phase 1 (intermediate reached).
    SetPhase(u8),
    /// DAL: record a deroute taken in `dim`.
    Deroute { dim: u8 },
}

/// One possible `(output port, resource class)` choice for a packet,
/// weighted by estimated latency to the destination.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// Output port on the current router.
    pub port: u32,
    /// Resource class of the next channel (mapped to VCs by [`ClassMap`]).
    pub class: u8,
    /// `congestion x hopcount` estimate; lower is better.
    pub weight: u64,
    /// Remaining hop count if this candidate is taken (tie-breaker: fewer
    /// hops preferred, so uncongested networks route minimally).
    pub hops: u8,
    /// State update applied if this candidate is granted.
    pub commit: Commit,
}

/// Read-only congestion view of a single router's output side.
///
/// Implemented by the simulator; all quantities are in flits. "Free space"
/// is the credit count for the downstream buffer of `(port, vc)`.
pub trait RouterView {
    /// Number of virtual channels per port.
    fn num_vcs(&self) -> usize;
    /// Remaining downstream buffer space (credits) of `(port, vc)`.
    fn free_space(&self, port: usize, vc: usize) -> usize;
    /// Total downstream buffer capacity of `(port, vc)`.
    fn capacity(&self, port: usize, vc: usize) -> usize;
    /// Whether the downstream VC is currently claimed by an in-flight
    /// packet (virtual cut-through allocates VCs packet-atomically).
    fn vc_claimed(&self, port: usize, vc: usize) -> bool;
    /// Backlog of the output queue feeding `port`'s channel.
    fn queue_len(&self, port: usize) -> usize;

    /// Whether `port`'s outgoing link is currently usable. Fault-aware
    /// algorithms skip candidates on dead ports; a packet whose every
    /// legal next hop is down emits no candidates and waits for a revival
    /// (the simulator's watchdog flags permanent stalls). Defaults to
    /// `true` so fault-oblivious views need no changes.
    fn port_live(&self, _port: usize) -> bool {
        true
    }

    /// Occupied downstream space of `(port, vc)` (derived).
    fn occupancy(&self, port: usize, vc: usize) -> usize {
        self.capacity(port, vc) - self.free_space(port, vc)
    }

    /// Health penalty of `port`'s outgoing link, in equivalent flits of
    /// congestion. Nonzero when the link's retry sublayer has seen recent
    /// CRC errors or flaps, its replay buffer is filling, or the link runs
    /// degraded — the weight function folds it in so adaptive algorithms
    /// steer around lossy links *before* they die. Defaults to 0 for
    /// views without link-health tracking.
    fn link_health_penalty(&self, _port: usize) -> u64 {
        0
    }
}

/// Everything a routing algorithm may inspect when making a decision.
pub struct RouteCtx<'a> {
    /// Router making the decision.
    pub router: usize,
    /// Input port the packet arrived on (meaningless if `from_terminal`).
    pub input_port: usize,
    /// Input VC the packet occupies (meaningless if `from_terminal`).
    pub input_vc: usize,
    /// True at the packet's source router (arrived from a terminal).
    pub from_terminal: bool,
    /// Destination router.
    pub dst_router: usize,
    /// Destination terminal.
    pub dst_terminal: usize,
    /// Packet length in flits.
    pub pkt_len: usize,
    /// Current per-packet routing state.
    pub state: PacketRouteState,
    /// Congestion view of this router.
    pub view: &'a dyn RouterView,
}

/// A routing algorithm instance, bound to one topology + VC configuration.
///
/// Implementations are immutable and shared across all routers of a
/// simulation; any per-decision randomness comes from the caller's RNG so
/// simulations stay deterministic under a fixed seed.
pub trait RoutingAlgorithm: Send + Sync {
    /// Short name, e.g. `"DimWAR"`.
    fn name(&self) -> &'static str;

    /// Number of resource classes this algorithm requires for deadlock
    /// freedom (the `ClassMap` divisor).
    fn num_classes(&self) -> usize;

    /// Produce candidates for the packet described by `ctx` into `out`
    /// (cleared by the caller). Must emit at least one candidate; the
    /// destination router case is handled by the simulator (ejection) and
    /// never reaches `route`.
    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut SmallRng, out: &mut Vec<Candidate>);

    /// Static implementation-comparison metadata (Table 1).
    fn meta(&self) -> crate::meta::AlgoMeta;
}

/// Maps resource classes onto physical VCs.
///
/// Class `c` of `C` owns VCs `[c*V/C, (c+1)*V/C)`; when `V` is not a
/// multiple of `C` the remainder spreads over the lowest classes so every
/// class owns at least one VC.
#[derive(Clone, Copy, Debug)]
pub struct ClassMap {
    num_vcs: usize,
    num_classes: usize,
}

impl ClassMap {
    /// Creates a map of `num_classes` classes over `num_vcs` VCs.
    ///
    /// # Panics
    /// Panics if `num_classes` is zero or exceeds `num_vcs`.
    pub fn new(num_vcs: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 1, "need at least one class");
        assert!(
            num_classes <= num_vcs,
            "{num_classes} classes cannot fit in {num_vcs} VCs"
        );
        ClassMap {
            num_vcs,
            num_classes,
        }
    }

    /// Number of physical VCs.
    #[inline]
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// Number of resource classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// First VC of class `c`.
    #[inline]
    pub fn first_vc(&self, c: usize) -> usize {
        debug_assert!(c < self.num_classes);
        c * self.num_vcs / self.num_classes
    }

    /// The VC range `[start, end)` owned by class `c`.
    #[inline]
    pub fn vcs_of(&self, c: usize) -> std::ops::Range<usize> {
        debug_assert!(c < self.num_classes);
        self.first_vc(c)..(c + 1) * self.num_vcs / self.num_classes
    }

    /// Which class a VC belongs to.
    ///
    /// Exact inverse of [`Self::first_vc`]: the largest `c` with
    /// `first_vc(c) <= vc`, i.e. `ceil((vc+1)*C/V) - 1`.
    #[inline]
    pub fn class_of(&self, vc: usize) -> usize {
        debug_assert!(vc < self.num_vcs);
        ((vc + 1) * self.num_classes).div_ceil(self.num_vcs) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classmap_even_split() {
        let m = ClassMap::new(8, 2);
        assert_eq!(m.vcs_of(0), 0..4);
        assert_eq!(m.vcs_of(1), 4..8);
        for vc in 0..4 {
            assert_eq!(m.class_of(vc), 0);
        }
        for vc in 4..8 {
            assert_eq!(m.class_of(vc), 1);
        }
    }

    #[test]
    fn classmap_identity() {
        let m = ClassMap::new(8, 8);
        for vc in 0..8 {
            assert_eq!(m.vcs_of(vc), vc..vc + 1);
            assert_eq!(m.class_of(vc), vc);
        }
    }

    #[test]
    fn classmap_uneven_split_covers_all_vcs() {
        for v in 1..=16usize {
            for c in 1..=v {
                let m = ClassMap::new(v, c);
                let mut seen = vec![false; v];
                for cls in 0..c {
                    let r = m.vcs_of(cls);
                    assert!(!r.is_empty(), "class {cls} of {c} over {v} VCs is empty");
                    for vc in r {
                        assert!(!seen[vc], "vc {vc} in two classes");
                        seen[vc] = true;
                        assert_eq!(m.class_of(vc), cls, "v={v} c={c} vc={vc}");
                    }
                }
                assert!(seen.iter().all(|&s| s), "v={v} c={c}: uncovered vc");
            }
        }
    }

    #[test]
    fn classmap_class_ranges_are_monotone() {
        let m = ClassMap::new(8, 3);
        assert!(m.vcs_of(0).end <= m.vcs_of(1).start + 1);
        let all: Vec<usize> = (0..3).flat_map(|c| m.vcs_of(c)).collect();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn classmap_too_many_classes_panics() {
        let _ = ClassMap::new(2, 3);
    }

    #[test]
    fn default_state_has_no_intermediate() {
        let s = PacketRouteState::default();
        assert_eq!(s.intermediate, NO_INTERMEDIATE);
        assert_eq!(s.phase, 0);
        assert_eq!(s.deroute_mask, 0);
    }
}
