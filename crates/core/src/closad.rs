//! Adaptive Clos (Clos-AD) routing, a.k.a. UGAL+ — UGAL optimized for
//! fully-connected-dimension topologies (Kim et al., Flattened Butterfly,
//! ISCA'07; Table 2 row 4).
//!
//! Clos-AD is *dimension-ordered* (Table 1): at the source router it
//! weighs every output port of the **first unaligned dimension**. A
//! minimal port commits the packet to pure DOR; a non-minimal port selects
//! a random Valiant intermediate "that would use that output port" under
//! the least-common-ancestor methodology — the intermediate sits at the
//! port's coordinate in the first dimension, keeps the destination's
//! coordinate in aligned dimensions, and is uniformly random in the
//! remaining unaligned dimensions (so one source decision load-balances
//! every dimension, Valiant-style, without ever routing away from an
//! aligned dimension).
//!
//! Per the paper (Section 4.1 / footnote 5), the *sequential allocation*
//! the original Clos-AD relied on is infeasible in high-radix routers and
//! is not modelled: all candidates here are weighed against the same
//! cycle-start congestion snapshot.

use std::sync::Arc;

use hxtopo::HyperX;
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::api::{Candidate, Commit, RouteCtx, RoutingAlgorithm, NO_INTERMEDIATE};
use crate::hyperx_common::HxBase;
use crate::meta::{AlgoMeta, RoutingStyle};
use crate::valiant::valiant_continue;

/// Clos-AD / UGAL+ source-adaptive routing.
pub struct ClosAd {
    base: HxBase,
}

impl ClosAd {
    /// Creates Clos-AD for `hx` with `num_vcs` VCs split into two phase
    /// classes.
    pub fn new(hx: Arc<HyperX>, num_vcs: usize) -> Self {
        ClosAd {
            base: HxBase::new(hx, num_vcs, 2),
        }
    }
}

impl RoutingAlgorithm for ClosAd {
    fn name(&self) -> &'static str {
        "Clos-AD"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn route(&self, ctx: &RouteCtx<'_>, rng: &mut SmallRng, out: &mut Vec<Candidate>) {
        if !(ctx.from_terminal && ctx.state.intermediate == NO_INTERMEDIATE) {
            valiant_continue(&self.base, ctx, out);
            return;
        }
        let hx = &self.base.hx;
        let cur = hx.coord_of(ctx.router);
        let dst = hx.coord_of(ctx.dst_router);
        let h_min = cur.unaligned_count(&dst);
        debug_assert!(h_min > 0, "route() not called at destination");
        let d = cur
            .first_unaligned(&dst)
            .expect("route() not called at destination");
        // Minimal candidate: pure DOR from here, entirely in phase 1.
        let min_port = hx.port_towards(ctx.router, d, dst.get(d));
        out.push(self.base.candidate(
            ctx.view,
            min_port,
            1,
            h_min,
            Commit::SetValiant {
                intermediate: ctx.router as u32,
                phase: 1,
            },
        ));
        // Non-minimal candidates: every other port of the first unaligned
        // dimension, with an LCA-consistent random intermediate behind it.
        for c in 0..hx.width(d) {
            if c == cur.get(d) || c == dst.get(d) {
                continue;
            }
            let port = hx.port_towards(ctx.router, d, c);
            let mut x = cur.with(d, c);
            for e in (d + 1)..hx.dims() {
                if !cur.aligned(&dst, e) {
                    x.set(e, rng.random_range(0..hx.width(e)));
                }
            }
            let xr = hx.router_at(&x);
            let hops = cur.unaligned_count(&x) + x.unaligned_count(&dst);
            // The whole leg to the intermediate rides class 0; the DOR leg
            // from the intermediate rides class 1.
            out.push(self.base.candidate(
                ctx.view,
                port,
                0,
                hops,
                Commit::SetValiant {
                    intermediate: xr as u32,
                    phase: 0,
                },
            ));
        }
    }

    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Clos-AD",
            dimension_ordered: true,
            style: RoutingStyle::Source,
            vcs_required: "2",
            deadlock: "R.R. & R.C.",
            arch_requirements: "seq. alloc.",
            packet_contents: "int. addr.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{PacketRouteState, RouterView};
    use crate::mock::MockView;
    use hxtopo::{Coord, Topology};
    use rand::SeedableRng;

    fn source_ctx<'a>(
        hx: &HyperX,
        router: usize,
        dst_router: usize,
        view: &'a dyn RouterView,
    ) -> RouteCtx<'a> {
        RouteCtx {
            router,
            input_port: 0,
            input_vc: 0,
            from_terminal: true,
            dst_router,
            dst_terminal: dst_router * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view,
        }
    }

    #[test]
    fn evaluates_first_unaligned_dimension_only() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let algo = ClosAd::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 0])); // dims 0,1 unaligned
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
        // Dimension-ordered: 1 minimal + 2 deroutes, all in dimension 0.
        assert_eq!(out.len(), 3);
        for c in &out {
            let (d, _) = hx.port_dim_target(src, c.port as usize).unwrap();
            assert_eq!(d, 0, "Clos-AD is dimension-ordered (Table 1)");
        }
    }

    #[test]
    fn minimal_candidate_and_valiant_hops() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let algo = ClosAd::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0, 0]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 3]));
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = Vec::new();
        algo.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
        // One minimal (class 1, h_min hops) + two deroutes (class 0).
        let minimal: Vec<_> = out.iter().filter(|c| c.class == 1).collect();
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal[0].hops, 3);
        assert_eq!(
            minimal[0].port as usize,
            hx.port_towards(src, 0, 1),
            "minimal first hop is the DOR hop"
        );
        // Non-minimal paths cost between h_min + 1 and 2 * dims hops.
        for c in out.iter().filter(|c| c.class == 0) {
            assert!(c.hops >= 4 && c.hops <= 6, "hops {}", c.hops);
        }
    }

    #[test]
    fn intermediate_randomizes_higher_unaligned_dims() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let algo = ClosAd::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0, 2]));
        let dst = hx.router_at(&Coord::new(&[1, 2, 2])); // dim 2 aligned
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen_y = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut out = Vec::new();
            algo.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
            for c in &out {
                if let Commit::SetValiant {
                    intermediate,
                    phase: 0,
                } = c.commit
                {
                    let xc = hx.coord_of(intermediate as usize);
                    assert_eq!(xc.get(2), 2, "aligned dim must stay at dst coord");
                    seen_y.insert(xc.get(1));
                }
            }
        }
        assert!(seen_y.len() >= 3, "unaligned dim 1 should be randomized");
    }

    #[test]
    fn intermediate_matches_first_hop_port() {
        let hx = Arc::new(HyperX::uniform(3, 4, 1));
        let algo = ClosAd::new(hx.clone(), 8);
        let view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[1, 1, 1]));
        let dst = hx.router_at(&Coord::new(&[2, 3, 1]));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut out = Vec::new();
        algo.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
        let base = HxBase::new(hx.clone(), 8, 2);
        for c in &out {
            match c.commit {
                Commit::SetValiant {
                    intermediate,
                    phase: 0,
                } => {
                    // DOR toward the intermediate must start with this port.
                    assert_eq!(
                        base.dor_port(src, intermediate as usize).unwrap(),
                        c.port as usize,
                        "intermediate inconsistent with evaluated port"
                    );
                }
                Commit::SetValiant { phase: 1, .. } => {
                    // The minimal candidate: already "at" its intermediate.
                    assert_eq!(c.class, 1);
                }
                other => panic!("unexpected commit {other:?}"),
            }
        }
    }

    #[test]
    fn deroutes_around_congested_minimal_port() {
        let hx = Arc::new(HyperX::uniform(2, 4, 1));
        let algo = ClosAd::new(hx.clone(), 8);
        let mut view = MockView::idle(hx.max_ports(), 8, 16);
        let src = hx.router_at(&Coord::new(&[0, 0]));
        let dst = hx.router_at(&Coord::new(&[2, 0])); // only dim 0 unaligned
        let min_port = hx.port_towards(src, 0, 2);
        view.congest_port(min_port, 16);
        view.queues[min_port] = 20;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        algo.route(&source_ctx(&hx, src, dst, &view), &mut rng, &mut out);
        let best = out.iter().min_by_key(|c| (c.weight, c.hops)).unwrap();
        assert_ne!(best.port as usize, min_port, "failed to avoid congestion");
        assert_eq!(best.hops, 2, "deroute adds exactly one hop");
    }
}
