//! Property-based tests for routing-algorithm invariants: every algorithm
//! on every reachable state emits valid, deadlock-class-respecting
//! candidates.

use std::sync::Arc;

use hxcore::{
    hyperx_algorithm, mock::MockView, ClassMap, PacketRouteState, RouteCtx, HYPERX_ALGORITHMS,
    NO_INTERMEDIATE,
};
use hxtopo::{HyperX, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hyperx_strategy() -> impl Strategy<Value = Arc<HyperX>> {
    (prop::collection::vec(2usize..=5, 2..=3), 1usize..=3)
        .prop_map(|(widths, t)| Arc::new(HyperX::new(&widths, t)))
}

/// A random congestion state for the router's view.
fn congest(view: &mut MockView, ports: usize, seed: u64) {
    let mut x = seed | 1;
    for p in 0..ports {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        view.congest_port(p, (x >> 33) as usize % 150);
        view.queues[p] = (x >> 21) as usize % 60;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At the source router (from a terminal) every algorithm emits at
    /// least one candidate; all candidates use real network ports in
    /// unaligned dimensions, legal classes, and sane hop counts.
    #[test]
    fn source_candidates_always_valid(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        dst_seed in any::<u64>(),
        cong_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let nr = hx.num_routers() as u64;
        let src = (src_seed % nr) as usize;
        let dst = (dst_seed % nr) as usize;
        prop_assume!(src != dst);
        let mut view = MockView::idle(hx.max_ports(), 8, 160);
        congest(&mut view, hx.max_ports(), cong_seed);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let h_min = hx.min_router_hops(src, dst);

        for name in HYPERX_ALGORITHMS {
            let algo = hyperx_algorithm(name, hx.clone(), 8).unwrap();
            let map = ClassMap::new(8, algo.num_classes());
            let ctx = RouteCtx {
                router: src,
                input_port: 0,
                input_vc: 0,
                from_terminal: true,
                dst_router: dst,
                dst_terminal: dst * hx.terms_per_router(),
                pkt_len: 8,
                state: PacketRouteState::default(),
                view: &view,
            };
            let mut out = Vec::new();
            algo.route(&ctx, &mut rng, &mut out);
            prop_assert!(!out.is_empty(), "{name}: no candidates");
            for c in &out {
                // Port must be a network port toward an unaligned dim.
                let (d, to) = hx
                    .port_dim_target(src, c.port as usize)
                    .unwrap_or_else(|| panic!("{name}: candidate uses terminal port"));
                let (sc, dc) = (hx.coord_of(src), hx.coord_of(dst));
                // Topology-agnostic Valiant (VAL, UGAL) may route away
                // from an aligned dimension toward its random intermediate;
                // every LCA-respecting algorithm must not.
                if !matches!(*name, "VAL" | "UGAL") {
                    prop_assert!(!sc.aligned(&dc, d), "{name}: routed in aligned dim");
                }
                prop_assert!(to != sc.get(d));
                // Class legal for the algorithm's map.
                prop_assert!((c.class as usize) < algo.num_classes(), "{name}");
                prop_assert!(!map.vcs_of(c.class as usize).is_empty());
                // Hop estimate between minimal and a deroute per dim + val.
                prop_assert!((c.hops as usize) >= h_min, "{name}");
                prop_assert!((c.hops as usize) <= 2 * hx.dims(), "{name}: hops {}", c.hops);
            }
        }
    }

    /// DimWAR candidates all live in the first unaligned dimension, and a
    /// packet arriving on the deroute class is offered only the minimal
    /// hop.
    #[test]
    fn dimwar_dimension_order_property(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        dst_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let nr = hx.num_routers() as u64;
        let src = (src_seed % nr) as usize;
        let dst = (dst_seed % nr) as usize;
        prop_assume!(src != dst);
        let algo = hyperx_algorithm("DimWAR", hx.clone(), 8).unwrap();
        let map = ClassMap::new(8, 2);
        let view = MockView::idle(hx.max_ports(), 8, 160);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let first = hx.coord_of(src).first_unaligned(&hx.coord_of(dst)).unwrap();

        for (from_terminal, vc) in [(true, 0), (false, map.first_vc(0)), (false, map.first_vc(1))] {
            let ctx = RouteCtx {
                router: src,
                input_port: if from_terminal { 0 } else { hx.terms_per_router() },
                input_vc: vc,
                from_terminal,
                dst_router: dst,
                dst_terminal: dst * hx.terms_per_router(),
                pkt_len: 4,
                state: PacketRouteState::default(),
                view: &view,
            };
            let mut out = Vec::new();
            algo.route(&ctx, &mut rng, &mut out);
            for c in &out {
                let (d, _) = hx.port_dim_target(src, c.port as usize).unwrap();
                prop_assert_eq!(d, first, "DimWAR left the current dimension");
            }
            if !from_terminal && map.class_of(vc) == 1 {
                prop_assert_eq!(out.len(), 1, "deroute after deroute offered");
                prop_assert_eq!(out[0].class, 0);
            }
        }
    }

    /// OmniWAR's distance-class accounting: the outgoing class always
    /// leaves enough classes for the remaining minimal hops.
    #[test]
    fn omniwar_distance_class_budget(
        hx in hyperx_strategy(),
        src_seed in any::<u64>(),
        dst_seed in any::<u64>(),
        class_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let nr = hx.num_routers() as u64;
        let src = (src_seed % nr) as usize;
        let dst = (dst_seed % nr) as usize;
        prop_assume!(src != dst);
        let algo = hyperx_algorithm("OmniWAR", hx.clone(), 8).unwrap();
        let classes = algo.num_classes();
        let map = ClassMap::new(8, classes);
        let view = MockView::idle(hx.max_ports(), 8, 160);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let remaining = hx.min_router_hops(src, dst);
        // Any input class that could legally occur: hop index h with
        // enough budget left for `remaining` minimal hops.
        let max_in = classes - remaining; // out class = in + 1 <= classes - remaining
        prop_assume!(max_in >= 1);
        let in_class = (class_seed % max_in as u64) as usize;
        let ctx = RouteCtx {
            router: src,
            input_port: hx.terms_per_router(),
            input_vc: map.first_vc(in_class),
            from_terminal: false,
            dst_router: dst,
            dst_terminal: dst * hx.terms_per_router(),
            pkt_len: 4,
            state: PacketRouteState::default(),
            view: &view,
        };
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        prop_assert!(!out.is_empty());
        for c in &out {
            prop_assert_eq!(c.class as usize, in_class + 1, "VC_out = VC_in + 1");
            // After this hop: remaining' = remaining or remaining - 1.
            let after = if (c.hops as usize) == remaining { remaining - 1 } else { remaining };
            prop_assert!(
                classes - 1 - (in_class + 1) >= after,
                "class budget violated: classes={classes} out={} after={after}",
                in_class + 1
            );
        }
    }

    /// The WARs never commit packet state; the Valiant family always
    /// commits a decision at the source.
    #[test]
    fn commit_discipline(
        hx in hyperx_strategy(),
        dst_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let nr = hx.num_routers() as u64;
        let dst = 1 + (dst_seed % (nr - 1)) as usize;
        let view = MockView::idle(hx.max_ports(), 8, 160);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        fn mk<'a>(view: &'a MockView, dst: usize, terms: usize) -> RouteCtx<'a> {
            RouteCtx {
                router: 0,
                input_port: 0,
                input_vc: 0,
                from_terminal: true,
                dst_router: dst,
                dst_terminal: dst * terms,
                pkt_len: 4,
                state: PacketRouteState::default(),
                view,
            }
        }
        for name in ["DimWAR", "OmniWAR", "DOR", "MinAD"] {
            let algo = hyperx_algorithm(name, hx.clone(), 8).unwrap();
            let mut out = Vec::new();
            algo.route(&mk(&view, dst, hx.terms_per_router()), &mut rng, &mut out);
            prop_assert!(
                out.iter().all(|c| c.commit == hxcore::Commit::None),
                "{name} stored packet state"
            );
        }
        for name in ["VAL", "UGAL", "Clos-AD"] {
            let algo = hyperx_algorithm(name, hx.clone(), 8).unwrap();
            let mut out = Vec::new();
            algo.route(&mk(&view, dst, hx.terms_per_router()), &mut rng, &mut out);
            for c in &out {
                match c.commit {
                    hxcore::Commit::SetValiant { intermediate, .. } => {
                        prop_assert!(intermediate != NO_INTERMEDIATE);
                        prop_assert!((intermediate as usize) < hx.num_routers());
                    }
                    other => prop_assert!(false, "{name}: unexpected commit {other:?}"),
                }
            }
        }
    }
}
