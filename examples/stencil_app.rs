//! Run the paper's 27-point stencil application model (Section 6.2) on a
//! HyperX and compare routing algorithms on the full
//! exchange-plus-collective iteration loop (Figure 8c).
//!
//! ```text
//! cargo run --release --example stencil_app
//! ```

use std::sync::Arc;

use hyperx::app::{PhaseMode, Placement, StencilApp, StencilConfig};
use hyperx::routing::{hyperx_algorithm, RoutingAlgorithm};
use hyperx::sim::{Sim, SimConfig};
use hyperx::topo::{HyperX, Topology};

fn main() {
    let hx = Arc::new(HyperX::uniform(3, 4, 4));
    let cfg = SimConfig::default();
    println!(
        "stencil on {}: {} processes, 100 kB halo per node per iteration,",
        hx.name(),
        hx.num_terminals()
    );
    println!("random placement, 2 iterations, dissemination allreduce\n");

    println!(
        "{:>8}  {:>12}  {:>9}  {:>9}",
        "algo", "exec cycles", "messages", "packets"
    );
    for name in ["DOR", "VAL", "UGAL", "Clos-AD", "DimWAR", "OmniWAR"] {
        let algo: Arc<dyn RoutingAlgorithm> = hyperx_algorithm(name, hx.clone(), cfg.num_vcs)
            .unwrap()
            .into();
        let mut sim = Sim::new(hx.clone(), algo, cfg, 11);
        let app_cfg = StencilConfig {
            iterations: 2,
            mode: PhaseMode::Full,
            placement: Placement::Random(11),
            ..StencilConfig::paper_default(hx.num_terminals())
        };
        let mut app = StencilApp::new(app_cfg, hx.num_terminals());
        let exec = sim
            .run_to_completion(&mut app, 100_000_000)
            .expect("stencil did not complete");
        println!(
            "{:>8}  {:>12}  {:>9}  {:>9}",
            name, exec, app.metrics.messages, app.metrics.packets
        );
    }
    println!("\nLower is better. The halo exchange rewards non-minimal");
    println!("adaptivity (DOR suffers), the collective rewards minimal");
    println!("latency (VAL suffers) — the WARs balance both.");
}
