//! Quickstart: build a HyperX, pick a routing algorithm, run uniform
//! random traffic, and read the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hyperx::routing::{hyperx_algorithm, RoutingAlgorithm};
use hyperx::sim::{run_steady_state, Sim, SimConfig, SteadyOpts};
use hyperx::topo::{HyperX, Topology};
use hyperx::traffic::{SyntheticWorkload, UniformRandom};

fn main() {
    // A 3D HyperX: 4 routers per dimension, 4 terminals per router
    // (a scaled-down version of the paper's 8x8x8 / 4,096-node network).
    let hx = Arc::new(HyperX::uniform(3, 4, 4));
    println!(
        "topology: {} — {} routers, {} terminals, diameter {}",
        hx.name(),
        hx.num_routers(),
        hx.num_terminals(),
        hx.diameter()
    );

    // The paper's timing: 8 VCs, 50 ns channels and crossbar, 5 ns
    // terminal links, packets of 1..=16 flits.
    let cfg = SimConfig::default();

    // Compare the paper's two contributions against the classic baselines.
    println!("\nuniform random traffic at 60% load:");
    println!(
        "{:>8}  {:>9}  {:>9}  {:>6}",
        "algo", "accepted", "latency", "hops"
    );
    for name in ["DOR", "VAL", "UGAL", "DimWAR", "OmniWAR"] {
        let algo: Arc<dyn RoutingAlgorithm> = hyperx_algorithm(name, hx.clone(), cfg.num_vcs)
            .unwrap()
            .into();
        let mut sim = Sim::new(hx.clone(), algo, cfg, 1);
        let pattern = Arc::new(UniformRandom::new(hx.num_terminals()));
        let mut traffic = SyntheticWorkload::new(pattern, hx.num_terminals(), 0.6, 1);
        let point = run_steady_state(&mut sim, &mut traffic, 0.6, SteadyOpts::default());
        println!(
            "{:>8}  {:>9.3}  {:>7.0}ns  {:>6.2}",
            name, point.accepted, point.mean_latency, point.mean_hops
        );
    }
    println!("\nMinimal algorithms deliver ~0.6 with low latency; VAL pays its");
    println!("2x bandwidth/latency tax even on benign traffic — exactly why");
    println!("adaptive routing wants to stay minimal until congestion appears.");
}
