//! The paper's headline result in one example: when congestion hides in
//! the *second* dimension (URBy), source-adaptive routing cannot see it at
//! decision time and collapses to DOR throughput, while the incremental
//! DimWAR/OmniWAR route around it hop by hop (Figure 6d, "as much as 4x").
//!
//! ```text
//! cargo run --release --example adversarial_traffic
//! ```

use std::sync::Arc;

use hyperx::routing::{hyperx_algorithm, RoutingAlgorithm};
use hyperx::sim::{run_steady_state, Sim, SimConfig, SteadyOpts};
use hyperx::topo::{HyperX, Topology};
use hyperx::traffic::{pattern_by_name, SyntheticWorkload};

fn run(hx: &Arc<HyperX>, pattern: &str, algo_name: &str, load: f64) -> (f64, bool) {
    let cfg = SimConfig::default();
    let algo: Arc<dyn RoutingAlgorithm> = hyperx_algorithm(algo_name, hx.clone(), cfg.num_vcs)
        .unwrap()
        .into();
    let mut sim = Sim::new(hx.clone(), algo, cfg, 7);
    let pat = pattern_by_name(pattern, hx.clone()).unwrap();
    let mut traffic = SyntheticWorkload::new(pat, hx.num_terminals(), load, 7);
    let p = run_steady_state(&mut sim, &mut traffic, load, SteadyOpts::default());
    (p.accepted, p.saturated)
}

fn main() {
    // A 2D 8x8 HyperX with 8 terminals per router makes the contrast
    // sharp: the minimal-only cap on URBy is 1/8 of injection bandwidth.
    let hx = Arc::new(HyperX::uniform(2, 8, 8));
    println!("topology: {}", hx.name());

    for pattern in ["URBx", "URBy"] {
        println!(
            "\n{pattern}: bisection congestion in the {} dimension ({}!)",
            if pattern == "URBx" { "FIRST" } else { "SECOND" },
            if pattern == "URBx" {
                "visible at the source router"
            } else {
                "invisible to source-adaptive routing"
            }
        );
        println!("{:>8}  {:>10}", "algo", "accepted");
        for algo in ["DOR", "UGAL", "DimWAR", "OmniWAR"] {
            let (acc, sat) = run(&hx, pattern, algo, 0.45);
            println!(
                "{:>8}  {:>10}",
                algo,
                format!("{acc:.3}{}", if sat { " (saturated)" } else { "" })
            );
        }
    }
    println!("\nOn URBx everyone adapts. On URBy, UGAL is pinned near DOR's");
    println!("1/width cap while the incremental algorithms deliver the full");
    println!("bisection-limited 50% — the paper's up-to-4x throughput gap.");
}
