//! Trace real packets through the network and print their hop-by-hop VC
//! usage — the paper's Figure 5, live.
//!
//! DimWAR reuses two resource classes in every dimension (deroutes on
//! class 1); OmniWAR walks strictly increasing distance classes.
//!
//! ```text
//! cargo run --release --example vc_trace
//! ```

use std::sync::Arc;

use hyperx::routing::{hyperx_algorithm, RoutingAlgorithm};
use hyperx::sim::{Sim, SimConfig};
use hyperx::topo::{HyperX, Topology};
use hyperx::traffic::{pattern_by_name, SyntheticWorkload};

fn main() {
    for algo_name in ["DimWAR", "OmniWAR"] {
        let hx = Arc::new(HyperX::uniform(3, 4, 4));
        let algo: Arc<dyn RoutingAlgorithm> =
            hyperx_algorithm(algo_name, hx.clone(), 8).unwrap().into();
        let mut sim = Sim::new(hx.clone(), algo, SimConfig::default(), 5);
        sim.enable_tracing();
        // Bit-complement at 50% load forces non-minimal routing.
        let pattern = pattern_by_name("BC", hx.clone()).unwrap();
        let mut traffic = SyntheticWorkload::new(pattern, hx.num_terminals(), 0.5, 5);
        sim.run(&mut traffic, 3_000);

        let trace = sim.trace.take().unwrap();
        println!("\n=== {algo_name}: sample derouted paths (Figure 5) ===");
        let mut shown = 0;
        for path in trace.paths() {
            if !path.last().is_some_and(|h| h.ejection) || path.len() < 5 {
                continue; // want complete, non-minimal paths
            }
            let parts: Vec<String> = path
                .iter()
                .map(|h| {
                    let at = hx.coord_of(h.router as usize);
                    if h.ejection {
                        format!("{at}=>eject")
                    } else {
                        let (d, to) = hx
                            .port_dim_target(h.router as usize, h.out_port as usize)
                            .unwrap();
                        format!("{at}-[dim{d}->{to} vc{}]", h.out_vc)
                    }
                })
                .collect();
            println!("  {}", parts.join("  "));
            shown += 1;
            if shown == 4 {
                break;
            }
        }
    }
    println!("\nDimWAR: deroutes ride the second class (VCs 4-7), minimal hops");
    println!("the first (VCs 0-3), dimensions in order. OmniWAR: the VC number");
    println!("is the hop index — strictly increasing distance classes.");
}
