//! Explore the analytic models behind the paper's motivation: how large
//! each topology scales (Figure 2) and what its cabling costs under
//! different link technologies (Figure 3).
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use hyperx::cost::{
    dragonfly_cabling, dragonfly_for_nodes, hyperx_cabling, hyperx_for_nodes, scalability_sweep,
    CableTech, PriceModel,
};

fn main() {
    // Scalability: what can a 64-port router build?
    println!("scalability at radix 64 (>= 50% bisection):");
    for point in scalability_sweep(&[64]) {
        for (name, diameter, terminals) in &point.entries {
            println!("  {name:<12} diameter {diameter}: {terminals:>9} terminals");
        }
    }

    // Cabling: 4,096 nodes under shrinking DAC reach vs passive optics.
    let nodes = 4096;
    let hx = hyperx_for_nodes(nodes);
    let df = dragonfly_for_nodes(nodes);
    let hx_bom = hyperx_cabling(&hx, None);
    let df_bom = dragonfly_cabling(&df, None);
    let prices = PriceModel::default();
    println!("\ncabling for ~{nodes} nodes:");
    println!(
        "  HyperX:    {:>6} cables, {:>8.0} m total",
        hx_bom.cable_count(),
        hx_bom.total_length_m()
    );
    println!(
        "  Dragonfly: {:>6} cables, {:>8.0} m total",
        df_bom.cable_count(),
        df_bom.total_length_m()
    );
    println!(
        "\n  {:<22} {:>10} {:>10} {:>7}",
        "technology", "$/node HX", "$/node DF", "DF/HX"
    );
    for (name, tech) in [
        (
            "DAC 8m + AOC (2.5GHz)",
            CableTech::ElectricalOptical { dac_reach_m: 8.0 },
        ),
        (
            "DAC 3m + AOC (25GHz)",
            CableTech::ElectricalOptical { dac_reach_m: 3.0 },
        ),
        (
            "DAC 1m + AOC (100GHz)",
            CableTech::ElectricalOptical { dac_reach_m: 1.0 },
        ),
        ("passive optical", CableTech::PassiveOptical),
    ] {
        let hx_cost = hx_bom.cost_per_node(tech, &prices);
        let df_cost = df_bom.cost_per_node(tech, &prices);
        println!(
            "  {:<22} {:>10.2} {:>10.2} {:>7.3}",
            name,
            hx_cost,
            df_cost,
            df_cost / hx_cost
        );
    }
    println!("\nAs signaling rates shrink DAC reach, electrical cabling favors");
    println!("the Dragonfly; passive optics erase that edge — the paper's");
    println!("motivation for revisiting HyperX routing.");
}
