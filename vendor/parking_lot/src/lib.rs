//! Offline stand-in for `parking_lot`, backed by `std::sync`. Matches the
//! parking_lot API shape the workspace uses: infallible `lock()` /
//! `read()` / `write()` (poisoning is swallowed, as parking_lot has none).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive (std mutex with parking_lot's infallible API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (std rwlock with parking_lot's infallible API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
