//! Offline stand-in for `serde`, specialized to what this workspace needs:
//! a `Serialize` trait that renders a value as JSON into a `String`, plus
//! the `#[derive(Serialize)]` macro from the sibling `serde_derive` crate.
//!
//! The real serde models serialization through a generic `Serializer`;
//! every consumer in this repo only ever serializes flat result rows to
//! JSON (via `serde_json`), so the stand-in collapses the abstraction to
//! direct JSON emission. Code written against `T: serde::Serialize` +
//! `serde_json::to_writer/to_string` compiles unchanged.

// Lets the derive macro's emitted `::serde::Serialize` paths resolve even
// when expanded inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::Serialize;

/// A value that can render itself as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn to_json(&self, out: &mut String);
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Formats an integer without allocating.
fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

impl Serialize for u128 {
    fn to_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Serialize for bool {
    fn to_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Debug prints the shortest round-trip decimal, which is
                    // always a valid JSON number (e.g. "1.0", "2.5e-9").
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Infinity; follow serde_json and emit null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn to_json(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl Serialize for String {
    fn to_json(&self, out: &mut String) {
        self.as_str().to_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self, out: &mut String) {
        match self {
            Some(v) => v.to_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.to_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self, out: &mut String) {
        self.as_slice().to_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self, out: &mut String) {
        self.as_slice().to_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.to_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-7i32), "-7");
        assert_eq!(json(&0usize), "0");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(5u8)), "5");
        assert_eq!(json(&None::<u8>), "null");
    }

    #[test]
    fn derive_emits_object() {
        #[derive(crate::Serialize)]
        struct Row {
            algo: String,
            offered: f64,
            delivered: u64,
            saturated: bool,
        }
        let r = Row {
            algo: "DOR".into(),
            offered: 0.25,
            delivered: 100,
            saturated: false,
        };
        assert_eq!(
            json(&r),
            "{\"algo\":\"DOR\",\"offered\":0.25,\"delivered\":100,\"saturated\":false}"
        );
    }
}
