//! Offline stand-in for `criterion`: the macro/type surface the workspace's
//! benches use, backed by a simple wall-clock timer. No statistics engine,
//! no HTML reports — each benchmark is run for a short calibrated burst and
//! the mean ns/iter is printed, which is enough for relative comparisons
//! with `cargo bench` while keeping the repo buildable offline.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work so rates can be reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_bench(&label, self.sample_size, self.throughput, &mut g);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate the per-sample iteration count so one sample costs ~2 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let ns_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            println!("bench {label:<50} {ns_per_iter:>12.1} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            println!("bench {label:<50} {ns_per_iter:>12.1} ns/iter ({rate:.0} B/s)");
        }
        None => println!("bench {label:<50} {ns_per_iter:>12.1} ns/iter"),
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        let mut g = c.benchmark_group("t");
        g.sample_size(2).throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                count += x;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
