//! Offline stand-in for `crossbeam`'s scoped threads, implemented over
//! `std::thread::scope` (stabilized long after crossbeam popularized the
//! API). Mirrors the crossbeam 0.8 call shape the workspace uses:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); })` returning `Result` with a
//! panic payload if any worker panicked.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread as std_thread;

/// A scope handle; `spawn` borrows from the enclosing environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std_thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. Crossbeam passes the scope back into the
    /// closure so workers can themselves spawn; most callers ignore it.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
    }
}

pub struct ScopedJoinHandle<'scope, T>(std_thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// Runs `f` with a scope in which borrowing scoped threads can be spawned;
/// all are joined before `scope` returns. `Err` carries the panic payload
/// of a panicking worker (unlike std, which re-raises it).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std_thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
