//! `#[derive(Serialize)]` for the local offline `serde` stand-in.
//!
//! Hand-rolled on top of `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable offline). Supports structs with named fields — the only
//! shape the workspace derives — and emits an implementation of the
//! stand-in's `serde::Serialize { fn to_json(&self, out: &mut String) }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut fields_group = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let TokenTree::Ident(n) = &tokens[i + 1] else {
                    panic!("derive(Serialize): expected struct name");
                };
                name = Some(n.to_string());
                // Scan forward to the brace group holding the fields.
                for t in &tokens[i + 2..] {
                    match t {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            fields_group = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => break,
                        _ => {}
                    }
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("derive(Serialize): enums are not supported by the offline stand-in");
            }
            _ => {}
        }
        i += 1;
    }

    let name = name.expect("derive(Serialize): no struct found");
    let fields_group =
        fields_group.expect("derive(Serialize): only structs with named fields are supported");
    let fields = named_fields(fields_group);

    let mut body = String::from("out.push('{');");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\
             ::serde::Serialize::to_json(&self.{f}, out);"
        ));
    }
    body.push_str("out.push('}');");

    let imp = format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_json(&self, out: &mut ::std::string::String) {{ {body} }}\
         }}"
    );
    imp.parse()
        .expect("derive(Serialize): generated impl failed to parse")
}

/// Extracts field names from the token stream of a brace-delimited named
/// field list, splitting on top-level commas (angle-bracket depth aware)
/// and skipping attributes and visibility modifiers.
fn named_fields(stream: proc_macro::TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut chunk: Vec<&TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if let Some(f) = field_name(&chunk) {
                    fields.push(f);
                }
                chunk.clear();
                continue;
            }
            _ => {}
        }
        chunk.push(t);
    }
    if let Some(f) = field_name(&chunk) {
        fields.push(f);
    }
    fields
}

/// First identifier of a field chunk after stripping `#[...]` attributes
/// and `pub` / `pub(...)` visibility.
fn field_name(chunk: &[&TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute: '#' + [..]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
    None
}
