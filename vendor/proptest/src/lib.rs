//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: the `proptest!` macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, `Strategy` with
//! `prop_map`, integer-range / tuple / `Just` strategies,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so runs are reproducible) and
//! failing cases are reported but **not shrunk**. Rejected cases
//! (`prop_assume!`) count toward the case budget.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; skip this input.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Deterministic xoshiro256++ generator driving input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the test name), so every test
    /// gets a distinct but stable input stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-domain strategies for primitives, via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Accepted size specifications for [`vec`].
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec size range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `S`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64 + 1;
                let len = self.size.min + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, sizes)`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly among fixed options.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select { options }
        }
    }
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                for case in 0..cfg.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {}: case #{} failed: {}",
                            stringify!($name),
                            case,
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 5u64..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y), "y = {y} out of range");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(1usize..4, 2..=5),
            w in prop::collection::vec(0usize..8, 1..=4).prop_map(|v| v.len()),
            pick in prop::sample::select(vec![2usize, 4]),
            seed in any::<u64>(),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
            prop_assert!((1..=4).contains(&w));
            prop_assert!(pick == 2 || pick == 4);
            prop_assume!(seed != 0);
            prop_assert_ne!(seed, 0);
            prop_assert_eq!(pick % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams_per_test_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
