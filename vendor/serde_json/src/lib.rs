//! Offline stand-in for `serde_json`: `to_string` / `to_writer` over the
//! local `serde::Serialize` trait (which renders JSON directly).

use std::fmt;
use std::io;

/// Serialization error (only I/O can fail; encoding is infallible).
#[derive(Debug)]
pub struct Error(io::Error);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error(e)
    }
}

/// Serializes `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let mut out = String::new();
    value.to_json(&mut out);
    writer.write_all(out.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_and_writer_agree() {
        let v = vec![1u32, 2, 3];
        let s = super::to_string(&v).unwrap();
        let mut buf = Vec::new();
        super::to_writer(&mut buf, &v).unwrap();
        assert_eq!(s.as_bytes(), &buf[..]);
        assert_eq!(s, "[1,2,3]");
    }
}
