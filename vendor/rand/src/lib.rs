//! Offline stand-in for the `rand` crate covering exactly the surface this
//! workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `RngExt::{random, random_range}` and `seq::SliceRandom::shuffle`.
//!
//! The container this repo builds in has no network access to a cargo
//! registry, so the external `rand` dependency is replaced by this local
//! implementation. `SmallRng` is xoshiro256++ seeded through SplitMix64 —
//! the same generator family the real crate uses on 64-bit targets. Stream
//! values differ from upstream `rand`; everything in-repo only relies on
//! determinism for a fixed seed, not on specific draws.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output function.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from their whole value domain
/// (`RngExt::random`). Floats sample uniformly from `[0, 1)`.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`RngExt::random_range`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every value is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform sample over `T`'s whole domain (`[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice sorted");
    }
}
