//! # hyperx — practical and efficient incremental adaptive routing for
//! HyperX networks
//!
//! A comprehensive reproduction of McDonald, Isaev, Flores, Davis & Kim,
//! *"Practical and Efficient Incremental Adaptive Routing for HyperX
//! Networks"* (SC '19): the DimWAR and OmniWAR incremental adaptive routing
//! algorithms, every baseline they are evaluated against, a cycle-accurate
//! flit-level network simulator, the paper's synthetic traffic patterns and
//! 27-point stencil application model, and analytic cost/scalability
//! models.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`topo`] — topologies: HyperX, Dragonfly, fat tree ([`hxtopo`])
//! * [`routing`] — the routing algorithms ([`hxcore`])
//! * [`sim`] — the cycle-accurate simulator ([`hxsim`])
//! * [`traffic`] — synthetic patterns and steady-state workloads
//!   ([`hxtraffic`])
//! * [`app`] — the 27-point stencil application model ([`hxapp`])
//! * [`cost`] — cabling-cost and scalability analytics ([`hxcost`])
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use hyperx::topo::HyperX;
//! use hyperx::routing::OmniWar;
//! use hyperx::sim::{Sim, SimConfig, run_steady_state, SteadyOpts};
//! use hyperx::traffic::{SyntheticWorkload, UniformRandom};
//!
//! // A small 2D HyperX under uniform random traffic at 30% load.
//! let hx = Arc::new(HyperX::uniform(2, 4, 2));
//! let algo = Arc::new(OmniWar::max_deroutes(hx.clone(), 8));
//! let mut sim = Sim::new(hx.clone(), algo, SimConfig::default(), 1);
//! let pattern = Arc::new(UniformRandom::new(32));
//! let mut traffic = SyntheticWorkload::new(pattern, 32, 0.3, 1);
//! let opts = SteadyOpts { warmup_window: 500, measure_cycles: 1_000, ..SteadyOpts::default() };
//! let point = run_steady_state(&mut sim, &mut traffic, 0.3, opts);
//! assert!(point.accepted > 0.2);
//! ```

pub use hxapp as app;
pub use hxcore as routing;
pub use hxcost as cost;
pub use hxsim as sim;
pub use hxtopo as topo;
pub use hxtraffic as traffic;
